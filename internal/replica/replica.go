// Package replica is the follower half of WAL-shipping replication
// (DESIGN.md §12): a Node tails a leader's per-tenant write-ahead log
// over HTTP (GET /sites/{name}/wal?from=), applies each record through
// the same snapshot-swap path local recovery uses, and serves read-only
// /match, /matchall, and /check from its local snapshots. Writes are
// rejected with a typed 403 naming the leader; /readyz is lag-gated so
// a router keeps a stale follower out of rotation until it catches up.
//
// The protocol invariants:
//
//   - Every applied record is one all-or-nothing site-snapshot swap, so
//     a reader never observes a state between two leader
//     acknowledgements — a cut stream just freezes the follower at the
//     last applied LSN.
//   - The applied LSN advances only after a successful apply; torn
//     streams (the leader died or the connection dropped mid-frame)
//     retry from it, and mid-stream CRC damage is counted and refetched
//     rather than applied.
//   - A follower whose `from` predates the leader's checkpoint receives
//     an OpState record carrying the full checkpoint (the log below it
//     was truncated away) and resynchronizes in one swap.
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/registry"
	"p3pdb/internal/server"
)

// Replication observability, surfaced on /metrics as replica.*.
var (
	obsApplied    = obs.GetCounter("replica.records_applied")
	obsResyncs    = obs.GetCounter("replica.state_resyncs")
	obsTorn       = obs.GetCounter("replica.torn_streams")
	obsCorrupt    = obs.GetCounter("replica.corrupt_streams")
	obsApplyFails = obs.GetCounter("replica.apply_failures")
	obsRounds     = obs.GetCounter("replica.sync_rounds")
	obsLag        = obs.GetGauge("replica.max_lag_records")
	// Batch-apply shape: records-per-batch mean is batch_records /
	// apply_batches, the replication bench's coalescing measure.
	obsBatches      = obs.GetCounter("replica.apply_batches")
	obsBatchRecords = obs.GetCounter("replica.apply_batch_records")
)

// Options configure a follower node.
type Options struct {
	// Leader is the leader's base URL (e.g. "http://leader:8733").
	Leader string
	// Tenants names the tenants to replicate; empty discovers them from
	// the leader's GET /sites at Start.
	Tenants []string
	// PollInterval is the pause before retrying after a failed sync
	// round (default 200ms). Successful rounds pace themselves on the
	// leader's long poll.
	PollInterval time.Duration
	// Wait is the long-poll duration requested from the leader
	// (default 2s). Zero in Sync (the synchronous catch-up) regardless.
	Wait time.Duration
	// MaxReadyLag is the per-tenant lag (in records) past which /readyz
	// reports not-ready; zero demands full catch-up.
	MaxReadyLag uint64
	// Site passes options (budgets, cache sizes) to every replicated
	// site.
	Site core.Options
	// Client overrides the HTTP client used against the leader.
	Client *http.Client
}

// tenantState is one replicated tenant's position.
type tenantState struct {
	name      string
	site      *core.Site
	applied   atomic.Uint64 // last successfully applied LSN
	leaderLSN atomic.Uint64 // leader log head as last observed
	synced    atomic.Bool   // at least one completed catch-up round
	lastErr   atomic.Value  // string
}

func (ts *tenantState) lag() uint64 {
	leader, applied := ts.leaderLSN.Load(), ts.applied.Load()
	if leader <= applied {
		return 0
	}
	return leader - applied
}

// Node is a follower: a read-only registry fed from the leader's WAL,
// wrapped in the follower HTTP face.
type Node struct {
	opts   Options
	reg    *registry.Registry
	inner  *server.MultiServer
	mux    *http.ServeMux
	client *http.Client

	mu      sync.Mutex
	tenants map[string]*tenantState

	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	started bool
}

// New builds a follower node for a leader. Tenants named in the options
// are tracked immediately; otherwise Start discovers them.
func New(opts Options) (*Node, error) {
	if opts.Leader == "" {
		return nil, errors.New("replica: leader URL required")
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 200 * time.Millisecond
	}
	if opts.Wait <= 0 {
		opts.Wait = 2 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{Timeout: opts.Wait + 30*time.Second}
	}
	reg, err := registry.New(registry.Options{Site: opts.Site, ReadOnly: true})
	if err != nil {
		return nil, err
	}
	n := &Node{
		opts:    opts,
		reg:     reg,
		inner:   server.NewMultiWithOptions(reg, server.Options{ReadOnly: true, Leader: opts.Leader}),
		mux:     http.NewServeMux(),
		client:  client,
		tenants: map[string]*tenantState{},
	}
	n.ctx, n.cancel = context.WithCancel(context.Background())
	// The follower face is the multi-tenant API with two overrides:
	// readiness is lag-gated, and replication status reports the
	// follower's applied/leader LSNs instead of the leader's journal.
	n.mux.HandleFunc("/readyz", n.handleReadyz)
	n.mux.HandleFunc("/replication/status", n.handleStatus)
	n.mux.Handle("/", n.inner)
	for _, name := range opts.Tenants {
		if err := n.Track(name); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Track starts replicating a tenant (idempotent): the local site
// materializes empty and fills on the next sync round.
func (n *Node) Track(name string) error {
	name, err := registry.Normalize(name)
	if err != nil {
		return err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.tenants[name]; ok {
		return nil
	}
	site, err := n.reg.Install(name)
	if err != nil {
		return err
	}
	ts := &tenantState{name: name, site: site}
	ts.lastErr.Store("")
	n.tenants[name] = ts
	if n.started {
		n.wg.Add(1)
		go n.tailLoop(ts)
	}
	return nil
}

// Discover asks the leader for its tenant list and tracks every name.
func (n *Node) Discover() error {
	req, err := http.NewRequestWithContext(n.ctx, http.MethodGet, n.opts.Leader+"/sites", nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return fmt.Errorf("replica: discovering tenants: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: discovering tenants: leader returned %s", resp.Status)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		return fmt.Errorf("replica: discovering tenants: %w", err)
	}
	for _, name := range names {
		if err := n.Track(name); err != nil {
			return err
		}
	}
	return nil
}

// states snapshots the tracked tenants, sorted by name.
func (n *Node) states() []*tenantState {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]*tenantState, 0, len(n.tenants))
	for _, ts := range n.tenants {
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Sync runs one synchronous catch-up round (no long poll) for every
// tracked tenant — the deterministic path tests and benches use.
func (n *Node) Sync(ctx context.Context) error {
	var errs []error
	for _, ts := range n.states() {
		if err := n.syncTenant(ctx, ts, 0); err != nil {
			errs = append(errs, fmt.Errorf("replica: %s: %w", ts.name, err))
		}
	}
	return errors.Join(errs...)
}

// Start launches the background tail loops (discovering tenants first
// when none were named). Safe to call once.
func (n *Node) Start() error {
	n.mu.Lock()
	empty := len(n.tenants) == 0
	n.mu.Unlock()
	if empty {
		if err := n.Discover(); err != nil {
			return err
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.started {
		return nil
	}
	n.started = true
	for _, ts := range n.tenants {
		n.wg.Add(1)
		go n.tailLoop(ts)
	}
	return nil
}

// Stop cancels the tail loops and waits for them.
func (n *Node) Stop() {
	n.cancel()
	n.wg.Wait()
}

// tailLoop tails one tenant until the node stops: long-polling sync
// rounds back to back, with a pause after failures.
func (n *Node) tailLoop(ts *tenantState) {
	defer n.wg.Done()
	for {
		if n.ctx.Err() != nil {
			return
		}
		err := n.syncTenant(n.ctx, ts, n.opts.Wait)
		if err != nil && n.ctx.Err() == nil {
			ts.lastErr.Store(err.Error())
			select {
			case <-n.ctx.Done():
				return
			case <-time.After(n.opts.PollInterval):
			}
		}
	}
}

// syncTenant runs one sync round: fetch the WAL from the applied LSN
// (long-polling up to wait) and apply every record. The applied LSN
// advances per record, only on success.
func (n *Node) syncTenant(ctx context.Context, ts *tenantState, wait time.Duration) error {
	url := fmt.Sprintf("%s/sites/%s/wal?from=%d", n.opts.Leader, ts.name, ts.applied.Load())
	if wait > 0 {
		url += "&wait=" + wait.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("leader returned %s", resp.Status)
	}
	obsRounds.Inc()
	if v := resp.Header.Get("X-WAL-LSN"); v != "" {
		if lsn, perr := strconv.ParseUint(v, 10, 64); perr == nil {
			ts.leaderLSN.Store(lsn)
			if applied := ts.applied.Load(); applied > lsn {
				// The leader's log regressed below our applied position
				// (e.g. restored from an older backup): restart from zero
				// so the next round resynchronizes the full state.
				ts.applied.Store(0)
				ts.synced.Store(false)
				return fmt.Errorf("leader LSN %d below applied %d: resynchronizing", lsn, applied)
			}
		}
	}
	// Drain the whole contiguous run the leader sent before applying
	// anything: every record in the run then lands through chunked batch
	// applies — one snapshot rebuild per chunk instead of one per record,
	// which is what keeps follower lag bounded when the leader bursts.
	// A stream error or an injected apply fault truncates the run at that
	// point; the records before it still apply (the pre-batching
	// behavior), the faulted record and everything after it do not.
	sr := durable.NewStreamReader(resp.Body)
	applied := ts.applied.Load()
	var run []*durable.Record
	var deferredErr error
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			if errors.Is(err, durable.ErrCorrupt) {
				obsCorrupt.Inc()
			} else {
				obsTorn.Inc()
			}
			deferredErr = err
			break
		}
		if rec.LSN <= applied {
			continue
		}
		if err := faultkit.Inject(faultkit.PointReplicaApply); err != nil {
			obsApplyFails.Inc()
			deferredErr = fmt.Errorf("applying record %d: %w", rec.LSN, err)
			break
		}
		run = append(run, rec)
	}
	if err := applyRun(ts, run); err != nil {
		return err
	}
	if deferredErr != nil {
		return deferredErr
	}
	ts.synced.Store(true)
	ts.lastErr.Store("")
	n.updateLagGauge()
	return nil
}

// maxApplyBatch bounds how many records land in one batch apply: chunks
// keep the follower publishing intermediate states on a long catch-up
// (readers see progress) and bound the work a failed batch discards.
const maxApplyBatch = 256

// applyRun lands a drained run of records through chunked batch applies,
// advancing the applied LSN after each chunk.
func applyRun(ts *tenantState, run []*durable.Record) error {
	for len(run) > 0 {
		chunk := run
		if len(chunk) > maxApplyBatch {
			chunk = chunk[:maxApplyBatch]
		}
		run = run[len(chunk):]
		n, err := durable.ApplyRecords(ts.site, chunk)
		if n > 0 {
			ts.applied.Store(chunk[n-1].LSN)
			obsBatches.Inc()
			obsBatchRecords.Add(int64(n))
			for _, rec := range chunk[:n] {
				if rec.Op == durable.OpState {
					obsResyncs.Inc()
				} else {
					obsApplied.Inc()
				}
			}
		}
		if err != nil {
			obsApplyFails.Inc()
			bad := chunk[n]
			return fmt.Errorf("applying record %d (%s): %w", bad.LSN, bad.Op, err)
		}
	}
	return nil
}

// updateLagGauge publishes the worst per-tenant lag.
func (n *Node) updateLagGauge() {
	var max uint64
	for _, ts := range n.states() {
		if l := ts.lag(); l > max {
			max = l
		}
	}
	obsLag.Set(int64(max))
}

// TenantStatus is one tenant's replication position, as Status reports
// it.
type TenantStatus struct {
	Tenant     string `json:"tenant"`
	AppliedLSN uint64 `json:"appliedLSN"`
	LeaderLSN  uint64 `json:"leaderLSN"`
	Lag        uint64 `json:"lag"`
	Synced     bool   `json:"synced"`
	LastError  string `json:"lastError,omitempty"`
}

// Status reports every tracked tenant's position, sorted by name.
func (n *Node) Status() []TenantStatus {
	states := n.states()
	out := make([]TenantStatus, 0, len(states))
	for _, ts := range states {
		st := TenantStatus{
			Tenant:     ts.name,
			AppliedLSN: ts.applied.Load(),
			LeaderLSN:  ts.leaderLSN.Load(),
			Lag:        ts.lag(),
			Synced:     ts.synced.Load(),
		}
		if v, ok := ts.lastErr.Load().(string); ok {
			st.LastError = v
		}
		out = append(out, st)
	}
	return out
}

// Ready reports whether every tracked tenant has completed a catch-up
// round and sits within MaxReadyLag of the leader — the lag gate that
// keeps a stale follower out of a router's rotation.
func (n *Node) Ready() bool {
	for _, ts := range n.states() {
		if !ts.synced.Load() || ts.lag() > n.opts.MaxReadyLag {
			return false
		}
	}
	return true
}

// Registry exposes the follower's registry (read-only; for tests).
func (n *Node) Registry() *registry.Registry { return n.reg }

// handleReadyz is the lag-gated readiness endpoint.
func (n *Node) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !n.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not-ready", "reason": "replica-lagging"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleStatus reports the follower's per-tenant positions in the shared
// ReplicationStatus shape.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := server.ReplicationStatus{Role: "follower", Ready: n.Ready(), Tenants: map[string]server.TenantReplication{}}
	for _, t := range n.Status() {
		st.Tenants[t.Tenant] = server.TenantReplication{
			LSN:       t.AppliedLSN,
			LeaderLSN: t.LeaderLSN,
			Lag:       t.Lag,
			Synced:    t.Synced,
			LastError: t.LastError,
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// writeJSON mirrors the server package's envelope helper.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// ServeHTTP implements http.Handler: the follower HTTP face.
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.mux.ServeHTTP(w, r)
}

// HTTPServer wraps the node in an http.Server with the same timeout
// posture as the leader-side servers.
func (n *Node) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           n,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}
