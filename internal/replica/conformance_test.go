package replica

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"p3pdb/internal/faultkit"
	"p3pdb/internal/server"
)

// readConformanceDir loads one side of the shared conformance corpus.
func readConformanceDir(t *testing.T, side string) map[string]string {
	t.Helper()
	dir := filepath.Join("..", "core", "testdata", "conformance", side)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("conformance corpus: %v", err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(e.Name(), ".xml")] = string(data)
	}
	if len(out) == 0 {
		t.Fatalf("conformance corpus %s is empty", dir)
	}
	return out
}

// volatileKeys are per-process measurement fields that legitimately
// differ between two nodes answering the same question: timings, cache
// hits, and the write-generation counter. Everything else — behavior,
// fired rule, compact policy, applicable policy — must be byte-equal.
var volatileKeys = map[string]bool{
	"convertMicros": true,
	"queryMicros":   true,
	"cached":        true,
	"generation":    true,
}

// normalizeDecision strips volatile fields recursively and re-marshals
// with sorted keys, so two decision bodies compare byte-for-byte.
func normalizeDecision(t *testing.T, body []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("decision body is not JSON: %v\n%s", err, body)
	}
	var strip func(any) any
	strip = func(x any) any {
		switch m := x.(type) {
		case map[string]any:
			for k, val := range m {
				if volatileKeys[k] {
					delete(m, k)
					continue
				}
				m[k] = strip(val)
			}
			return m
		case []any:
			for i := range m {
				m[i] = strip(m[i])
			}
			return m
		default:
			return x
		}
	}
	out, err := json.Marshal(strip(v))
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// decide issues one decision request and returns status, normalized
// body, and the P3P compact-policy header.
func decide(t *testing.T, base, path, pref string) (int, string, string) {
	t.Helper()
	method, body := http.MethodGet, ""
	if pref != "" {
		method, body = http.MethodPost, pref
	}
	req, err := http.NewRequest(method, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, normalizeDecision(t, raw), resp.Header.Get("P3P")
}

// runReplicationConformance seeds a leader with the conformance corpus,
// catches a follower up, and demands byte-identical normalized /match
// and /check decisions — including the P3P compact-policy header — for
// every corpus policy x preference x engine.
func runReplicationConformance(t *testing.T) {
	policies := readConformanceDir(t, "policies")
	preferences := readConformanceDir(t, "preferences")

	_, leader := newLeader(t)
	const tenant = "conf.example"
	if err := server.NewClient(leader.URL).CreateSite(tenant); err != nil {
		t.Fatal(err)
	}
	lc := server.NewClient(leader.URL + "/sites/" + tenant)
	var names []string
	for stem, xml := range policies {
		installed, err := lc.InstallPolicies(xml)
		if err != nil {
			t.Fatalf("install %s: %v", stem, err)
		}
		names = append(names, installed...)
	}
	if err := lc.InstallReferenceFile(refDocFor(names...)); err != nil {
		t.Fatal(err)
	}

	// Catch the follower up; with fault points armed the first rounds cut
	// the stream or abort the apply, so retry until the injected budget
	// is spent and the follower converges.
	node, err := New(Options{Leader: leader.URL, Tenants: []string{tenant}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	deadline := time.Now().Add(30 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = node.Sync(ctx)
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: %v", err)
		}
	}
	fs := httptest.NewServer(node)
	defer fs.Close()
	lbase := leader.URL + "/sites/" + tenant
	fbase := fs.URL + "/sites/" + tenant

	engines := []string{"native", "sql", "xtable", "xquery"}
	for prefStem, prefXML := range preferences {
		for _, pol := range names {
			for _, engine := range engines {
				q := url.Values{"uri": {"/" + pol + "/index.html"}, "engine": {engine}}
				path := "/match?" + q.Encode()
				ls, lb, lcp := decide(t, lbase, path, prefXML)
				fsc, fb, fcp := decide(t, fbase, path, prefXML)
				if ls != fsc || lb != fb || lcp != fcp {
					t.Errorf("/match %s/%s/%s diverges:\nleader   %d %s [P3P %q]\nfollower %d %s [P3P %q]",
						prefStem, pol, engine, ls, lb, lcp, fsc, fb, fcp)
				}

				cq := url.Values{"url": {"/" + pol + "/index.html"}, "engine": {engine}}
				cpath := "/check?" + cq.Encode()
				ls, lb, lcp = decide(t, lbase, cpath, prefXML)
				fsc, fb, fcp = decide(t, fbase, cpath, prefXML)
				if ls != fsc || lb != fb || lcp != fcp {
					t.Errorf("/check %s/%s/%s diverges:\nleader   %d %s [P3P %q]\nfollower %d %s [P3P %q]",
						prefStem, pol, engine, ls, lb, lcp, fsc, fb, fcp)
				}
			}
		}
	}

	// Agent levels ride the compact fast path; they must agree too.
	for _, level := range []string{"apathetic", "mild", "paranoid"} {
		for _, pol := range names {
			q := url.Values{"url": {"/" + pol + "/index.html"}, "level": {level}, "engine": {"sql"}}
			path := "/check?" + q.Encode()
			ls, lb, lcp := decide(t, lbase, path, "")
			fsc, fb, fcp := decide(t, fbase, path, "")
			if ls != fsc || lb != fb || lcp != fcp {
				t.Errorf("/check level %s/%s diverges:\nleader   %d %s [P3P %q]\nfollower %d %s [P3P %q]",
					level, pol, ls, lb, lcp, fsc, fb, fcp)
			}
		}
	}
}

// TestReplicationConformance runs the suite on a clean stream.
func TestReplicationConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full leader/follower differential in -short mode")
	}
	runReplicationConformance(t)
}

// TestReplicationConformanceWithFaults re-runs the suite with the
// stream-drop and apply-failure points armed: catch-up rides through
// cut streams and aborted rounds, and the converged follower must still
// answer byte-identically.
func TestReplicationConformanceWithFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full leader/follower differential in -short mode")
	}
	faultkit.Reset()
	t.Cleanup(faultkit.Reset)
	if err := faultkit.Enable(faultkit.PointReplicaStream + ":error:times=2"); err != nil {
		t.Fatal(err)
	}
	if err := faultkit.Enable(faultkit.PointReplicaApply + ":error:after=2:times=1"); err != nil {
		t.Fatal(err)
	}
	runReplicationConformance(t)
}
