package p3p

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomPolicy builds a random valid policy model.
func randomPolicy(r *rand.Rand) *Policy {
	p := &Policy{
		Name:    "p" + string(rune('a'+r.Intn(26))),
		Discuri: "http://example.com/privacy",
		Access:  AccessValues[r.Intn(len(AccessValues))],
	}
	if r.Intn(2) == 0 {
		p.Entity = &Entity{Name: "Example Corp", Email: "privacy@example.com"}
	}
	if r.Intn(3) == 0 {
		p.Disputes = []*Dispute{{
			ResolutionType: DisputeResolutionTypes[r.Intn(len(DisputeResolutionTypes))],
			Service:        "http://seal.example.org",
			Remedies:       []string{RemedyValues[r.Intn(len(RemedyValues))]},
		}}
	}
	for i, n := 0, 1+r.Intn(3); i < n; i++ {
		st := &Statement{Retention: Retentions[r.Intn(len(Retentions))]}
		seen := map[string]bool{}
		for j, m := 0, 1+r.Intn(4); j < m; j++ {
			v := Purposes[r.Intn(len(Purposes))]
			if seen[v] {
				continue
			}
			seen[v] = true
			pv := PurposeValue{Value: v}
			if r.Intn(3) == 0 {
				pv.Required = RequiredValues[r.Intn(len(RequiredValues))]
			}
			st.Purposes = append(st.Purposes, pv)
		}
		st.Recipients = append(st.Recipients, RecipientValue{Value: Recipients[r.Intn(len(Recipients))]})
		dg := &DataGroup{}
		refs := []string{"#user.name", "#user.bdate", "#user.home-info.postal", "#dynamic.miscdata"}
		seenRef := map[string]bool{}
		for j, m := 0, 1+r.Intn(3); j < m; j++ {
			ref := refs[r.Intn(len(refs))]
			if seenRef[ref] {
				continue
			}
			seenRef[ref] = true
			d := &Data{Ref: ref, Optional: r.Intn(4) == 0}
			if ref == "#dynamic.miscdata" {
				d.Categories = []string{Categories[r.Intn(len(Categories))]}
			}
			dg.Data = append(dg.Data, d)
		}
		st.DataGroups = append(st.DataGroups, dg)
		if r.Intn(2) == 0 {
			st.Consequence = "We use data & keep <your> trust."
		}
		p.Statements = append(p.Statements, st)
	}
	return p
}

// TestQuickPolicyRoundTrip property-tests that serialization followed by
// parsing reproduces the model exactly, for random valid policies
// (including text needing XML escaping).
func TestQuickPolicyRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		p := randomPolicy(r)
		if errs := p.Validate(); len(errs) != 0 {
			t.Fatalf("generator produced invalid policy: %v", errs)
		}
		back, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("reparse: %v\n%s", err, p.String())
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("round trip mismatch:\n%#v\nvs\n%#v\nXML:\n%s", p, back, p.String())
		}
	}
}

// TestQuickCloneIndependence property-tests that mutating a clone never
// affects the original.
func TestQuickCloneIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for i := 0; i < 100; i++ {
		p := randomPolicy(r)
		want := p.String()
		c := p.Clone()
		// Scramble the clone thoroughly.
		c.Name = "mutated"
		if c.Entity != nil {
			c.Entity.Name = "mutated"
		}
		for _, st := range c.Statements {
			st.Retention = "indefinitely"
			for k := range st.Purposes {
				st.Purposes[k].Value = "telemarketing"
			}
			for _, dg := range st.DataGroups {
				for _, d := range dg.Data {
					d.Ref = "#mutated"
					d.Categories = append(d.Categories, "health")
				}
			}
		}
		if got := p.String(); got != want {
			t.Fatalf("clone mutation leaked into original:\n%s\nvs\n%s", got, want)
		}
	}
}
