package p3p

import (
	"fmt"
	"strings"
)

// ValidationError describes one violation found by Validate.
type ValidationError struct {
	Where string // human-readable location, e.g. "statement 2 / purpose"
	Msg   string
}

// Error implements the error interface.
func (e ValidationError) Error() string { return "p3p: " + e.Where + ": " + e.Msg }

// Validate checks the policy against the P3P 1.0 vocabulary: every purpose,
// recipient, retention, category, access, and required value must be
// predefined, every statement must carry the mandatory elements (unless it
// is NON-IDENTIFIABLE), and data references must be well formed. It returns
// all violations found.
func (p *Policy) Validate() []ValidationError {
	var errs []ValidationError
	add := func(where, format string, args ...any) {
		errs = append(errs, ValidationError{Where: where, Msg: fmt.Sprintf(format, args...)})
	}
	if p.Name == "" {
		add("policy", "missing name attribute")
	}
	if p.Access != "" && !IsAccess(p.Access) {
		add("policy/access", "unknown ACCESS value %q", p.Access)
	}
	for i, d := range p.Disputes {
		where := fmt.Sprintf("disputes %d", i+1)
		if d.ResolutionType != "" && !contains(DisputeResolutionTypes, d.ResolutionType) {
			add(where, "unknown resolution-type %q", d.ResolutionType)
		}
		for _, r := range d.Remedies {
			if !contains(RemedyValues, r) {
				add(where, "unknown remedy %q", r)
			}
		}
	}
	if len(p.Statements) == 0 {
		add("policy", "policy has no statements")
	}
	for i, s := range p.Statements {
		where := fmt.Sprintf("statement %d", i+1)
		if s.NonIdentifiable {
			// NON-IDENTIFIABLE statements may omit purpose/recipient/
			// retention per the specification.
		} else {
			if len(s.Purposes) == 0 {
				add(where, "missing PURPOSE")
			}
			if len(s.Recipients) == 0 {
				add(where, "missing RECIPIENT")
			}
			if s.Retention == "" {
				add(where, "missing RETENTION")
			}
		}
		seen := map[string]bool{}
		for _, pv := range s.Purposes {
			if !IsPurpose(pv.Value) {
				add(where+"/purpose", "unknown purpose %q", pv.Value)
			}
			if pv.Required != "" && !IsRequired(pv.Required) {
				add(where+"/purpose", "bad required value %q on %s", pv.Required, pv.Value)
			}
			if seen["p:"+pv.Value] {
				add(where+"/purpose", "duplicate purpose %q", pv.Value)
			}
			seen["p:"+pv.Value] = true
		}
		for _, rv := range s.Recipients {
			if !IsRecipient(rv.Value) {
				add(where+"/recipient", "unknown recipient %q", rv.Value)
			}
			if rv.Required != "" && !IsRequired(rv.Required) {
				add(where+"/recipient", "bad required value %q on %s", rv.Required, rv.Value)
			}
			if seen["r:"+rv.Value] {
				add(where+"/recipient", "duplicate recipient %q", rv.Value)
			}
			seen["r:"+rv.Value] = true
		}
		if s.Retention != "" && !IsRetention(s.Retention) {
			add(where+"/retention", "unknown retention %q", s.Retention)
		}
		for j, g := range s.DataGroups {
			gw := fmt.Sprintf("%s/data-group %d", where, j+1)
			if len(g.Data) == 0 {
				add(gw, "empty DATA-GROUP")
			}
			for _, d := range g.Data {
				if !strings.HasPrefix(d.Ref, "#") {
					add(gw, "data ref %q must start with '#' for the base data schema", d.Ref)
				}
				for _, c := range d.Categories {
					if !IsCategory(c) {
						add(gw, "unknown category %q on %s", c, d.Ref)
					}
				}
			}
		}
	}
	return errs
}

// MustValid returns an error joining all validation failures, or nil.
func (p *Policy) MustValid() error {
	errs := p.Validate()
	if len(errs) == 0 {
		return nil
	}
	msgs := make([]string, len(errs))
	for i, e := range errs {
		msgs[i] = e.Error()
	}
	return fmt.Errorf("%s", strings.Join(msgs, "; "))
}
