// Package basedata models the P3P 1.0 base data schema: the predefined
// hierarchy of data elements (user.*, thirdparty.*, business.*, dynamic.*)
// together with their category assignments.
//
// The base data schema matters for preference matching because APPEL
// evaluation is defined over the *augmented* policy: every DATA element is
// annotated with the categories the base data schema assigns to its data
// reference. The paper's profiling of the JRC engine found that performing
// this augmentation on every match accounted for most of the native
// engine's cost; the server-centric SQL implementation instead performs it
// once, at shredding time.
package basedata

import (
	"sort"
	"strings"
	"sync"
)

// Element is one node in the base data schema hierarchy.
type Element struct {
	// Name is the last path segment, e.g. "postal".
	Name string
	// Ref is the full dotted path without the leading '#',
	// e.g. "user.home-info.postal".
	Ref string
	// Categories are the categories fixed by the schema at this node.
	// Descendants inherit them unless they fix their own.
	Categories []string
	// Variable marks elements (dynamic.miscdata, dynamic.cookies) whose
	// categories must be declared in the policy rather than the schema.
	Variable bool
	// Children are the subelements.
	Children []*Element

	parent *Element
}

// Schema is the built base data schema with a lookup table. The shared
// Default instance is matched against concurrently (every native-engine
// match augments through it), so the one mutable part — the leaf-expansion
// memo — is guarded by its own lock.
type Schema struct {
	roots  []*Element
	byRef  map[string]*Element
	leafMu sync.RWMutex
	leaves map[string][]*Element // memoized leaf expansion per ref
}

// node is the fluent builder for schema construction.
func node(name string, children ...*Element) *Element {
	return &Element{Name: name, Children: children}
}

func cat(cats ...string) func(*Element) *Element {
	return func(e *Element) *Element {
		e.Categories = cats
		return e
	}
}

func with(e *Element, mods ...func(*Element) *Element) *Element {
	for _, m := range mods {
		e = m(e)
	}
	return e
}

func variable(e *Element) *Element {
	e.Variable = true
	return e
}

// personName expands the personname structure.
func personName() []*Element {
	return []*Element{
		node("prefix"), node("given"), node("middle"),
		node("family"), node("suffix"), node("nickname"),
	}
}

// postal expands the postal structure.
func postal() []*Element {
	return []*Element{
		node("name", personName()...), node("street"), node("city"),
		node("stateprov"), node("postalcode"), node("country"),
		node("organization"),
	}
}

// telephoneNum expands the telephonenum structure.
func telephoneNum() []*Element {
	return []*Element{
		node("intcode"), node("loccode"), node("number"),
		node("ext"), node("comment"),
	}
}

// telecom expands the telecom structure.
func telecom() []*Element {
	return []*Element{
		node("telephone", telephoneNum()...),
		node("fax", telephoneNum()...),
		node("mobile", telephoneNum()...),
		node("pager", telephoneNum()...),
	}
}

// online expands the online structure.
func online() []*Element {
	return []*Element{node("email"), node("uri")}
}

// contactInfo expands the contact structure (postal/telecom/online) with
// the conventional category assignments: postal and telecom information is
// "physical", online contact information is "online".
func contactInfo() []*Element {
	return []*Element{
		with(node("postal", postal()...), cat("physical", "demographic")),
		with(node("telecom", telecom()...), cat("physical")),
		with(node("online", online()...), cat("online")),
	}
}

// date expands the date structure.
func date() []*Element {
	return []*Element{
		node("ymd.year"), node("ymd.month"), node("ymd.day"),
		node("hms.hour"), node("hms.minute"), node("hms.second"),
		node("fractionsecond"), node("timezone"),
	}
}

// loginStruct expands the login structure.
func loginStruct() []*Element {
	return []*Element{node("id"), node("password")}
}

// certStruct expands the certificate structure.
func certStruct() []*Element {
	return []*Element{node("key"), node("format")}
}

// userBranch builds a user-like subtree (also reused for thirdparty, whose
// elements mirror user's per the specification).
func userBranch(name string) *Element {
	return node(name,
		with(node("name", personName()...), cat("physical", "demographic")),
		with(node("bdate", date()...), cat("demographic")),
		with(node("login", loginStruct()...), cat("uniqueid")),
		with(node("cert", certStruct()...), cat("uniqueid")),
		with(node("gender"), cat("demographic")),
		with(node("employer"), cat("demographic")),
		with(node("department"), cat("demographic")),
		with(node("jobtitle"), cat("demographic")),
		with(node("home-info", contactInfo()...), cat("physical")),
		with(node("business-info", contactInfo()...), cat("physical")),
	)
}

// Build constructs the full base data schema. The result is immutable by
// convention; use Default for the shared instance.
func Build() *Schema {
	roots := []*Element{
		userBranch("user"),
		userBranch("thirdparty"),
		node("business",
			with(node("name"), cat("demographic")),
			with(node("department"), cat("demographic")),
			with(node("cert", certStruct()...), cat("uniqueid")),
			with(node("contact-info", contactInfo()...), cat("physical")),
		),
		node("dynamic",
			with(node("clickstream",
				node("uri"), node("timestamp"), node("clientip.hostname"),
				node("clientip.partialhostname"), node("other.httpmethod"),
				node("other.bytes"), node("other.statuscode"),
			), cat("navigation", "computer")),
			with(node("http",
				node("useragent"), node("referer"),
			), cat("navigation", "computer")),
			with(node("clientevents"), cat("navigation", "interactive")),
			variable(node("cookies")),
			with(node("searchtext"), cat("interactive")),
			with(node("interactionrecord"), cat("interactive")),
			variable(node("miscdata")),
		),
	}
	s := &Schema{byRef: map[string]*Element{}, leaves: map[string][]*Element{}, roots: roots}
	var finish func(e *Element, prefix string, parent *Element)
	finish = func(e *Element, prefix string, parent *Element) {
		e.parent = parent
		if prefix == "" {
			e.Ref = e.Name
		} else {
			e.Ref = prefix + "." + e.Name
		}
		s.byRef[e.Ref] = e
		for _, c := range e.Children {
			finish(c, e.Ref, e)
		}
	}
	for _, r := range roots {
		finish(r, "", nil)
	}
	return s
}

// defaultSchema is the shared, lazily built schema.
var defaultSchema = Build()

// Default returns the shared base data schema instance.
func Default() *Schema { return defaultSchema }

// normalizeRef strips a leading '#' from a data reference.
func normalizeRef(ref string) string { return strings.TrimPrefix(ref, "#") }

// Lookup returns the schema element for a data reference (with or without
// the leading '#'), or nil when the reference is not in the base schema.
func (s *Schema) Lookup(ref string) *Element {
	return s.byRef[normalizeRef(ref)]
}

// CategoriesFor resolves the categories of a data reference per the P3P
// augmentation rules: the closest ancestor-or-self element with fixed
// categories supplies them; variable-category elements take the categories
// declared in the policy. Unknown references fall back to the declared
// categories. The result is sorted and de-duplicated.
func (s *Schema) CategoriesFor(ref string, declared []string) []string {
	e := s.Lookup(ref)
	// Walk up to the nearest element if the exact ref is unknown (the
	// schema allows references below modeled leaves, e.g. custom
	// extensions of a structure).
	if e == nil {
		r := normalizeRef(ref)
		for {
			i := strings.LastIndexByte(r, '.')
			if i < 0 {
				break
			}
			r = r[:i]
			if found := s.byRef[r]; found != nil {
				e = found
				break
			}
		}
	}
	var out []string
	for cur := e; cur != nil; cur = cur.parent {
		if cur.Variable {
			out = append(out, declared...)
			break
		}
		if len(cur.Categories) > 0 {
			out = append(out, cur.Categories...)
			break
		}
	}
	if e == nil {
		out = append(out, declared...)
	}
	return dedupeSorted(out)
}

// Leaves returns the leaf elements at or below a data reference. A policy
// that collects "#user.home-info" implicitly collects every leaf beneath
// it; the augmentation step in APPEL engines expands references this way.
// The expansion for each distinct ref is computed once and memoized.
func (s *Schema) Leaves(ref string) []*Element {
	r := normalizeRef(ref)
	s.leafMu.RLock()
	cached, ok := s.leaves[r]
	s.leafMu.RUnlock()
	if ok {
		return cached
	}
	e := s.byRef[r]
	var out []*Element
	if e != nil {
		var walk func(*Element)
		walk = func(n *Element) {
			if len(n.Children) == 0 {
				out = append(out, n)
				return
			}
			for _, c := range n.Children {
				walk(c)
			}
		}
		walk(e)
	}
	s.leafMu.Lock()
	s.leaves[r] = out
	s.leafMu.Unlock()
	return out
}

// KnownRefs returns every reference in the schema, sorted. Used by the
// workload generator to draw realistic data references.
func (s *Schema) KnownRefs() []string {
	out := make([]string, 0, len(s.byRef))
	for r := range s.byRef {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// LeafRefs returns every leaf reference in the schema, sorted.
func (s *Schema) LeafRefs() []string {
	var out []string
	for r, e := range s.byRef {
		if len(e.Children) == 0 {
			out = append(out, r)
		}
	}
	sort.Strings(out)
	return out
}

func dedupeSorted(in []string) []string {
	if len(in) == 0 {
		return nil
	}
	sort.Strings(in)
	out := in[:1]
	for _, v := range in[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
