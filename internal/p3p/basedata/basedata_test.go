package basedata

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestLookup(t *testing.T) {
	s := Default()
	cases := []string{
		"user.name",
		"user.name.given",
		"user.home-info.postal.street",
		"user.home-info.telecom.telephone.number",
		"user.home-info.online.email",
		"thirdparty.name.family",
		"business.contact-info.postal.city",
		"dynamic.miscdata",
		"dynamic.clickstream.uri",
	}
	for _, ref := range cases {
		if s.Lookup(ref) == nil {
			t.Errorf("Lookup(%q) = nil", ref)
		}
		if s.Lookup("#"+ref) == nil {
			t.Errorf("Lookup(#%q) = nil", ref)
		}
	}
	if s.Lookup("user.shoe-size") != nil {
		t.Error("unknown ref should be nil")
	}
}

func TestCategoriesFixed(t *testing.T) {
	s := Default()
	cases := []struct {
		ref  string
		want []string
	}{
		{"#user.name", []string{"demographic", "physical"}},
		{"#user.name.given", []string{"demographic", "physical"}},
		{"#user.bdate", []string{"demographic"}},
		{"#user.login.password", []string{"uniqueid"}},
		{"#user.home-info.online.email", []string{"online"}},
		{"#user.home-info.postal.street", []string{"demographic", "physical"}},
		{"#user.home-info.telecom.mobile.number", []string{"physical"}},
		{"#dynamic.searchtext", []string{"interactive"}},
		{"#dynamic.http.useragent", []string{"computer", "navigation"}},
	}
	for _, c := range cases {
		got := s.CategoriesFor(c.ref, nil)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("CategoriesFor(%q) = %v, want %v", c.ref, got, c.want)
		}
	}
}

func TestCategoriesVariable(t *testing.T) {
	s := Default()
	got := s.CategoriesFor("#dynamic.miscdata", []string{"purchase", "financial", "purchase"})
	if !reflect.DeepEqual(got, []string{"financial", "purchase"}) {
		t.Errorf("variable categories = %v", got)
	}
	if got := s.CategoriesFor("#dynamic.cookies", []string{"preference"}); !reflect.DeepEqual(got, []string{"preference"}) {
		t.Errorf("cookie categories = %v", got)
	}
	// Variable element with nothing declared: empty.
	if got := s.CategoriesFor("#dynamic.miscdata", nil); len(got) != 0 {
		t.Errorf("miscdata with no declared categories = %v", got)
	}
}

func TestCategoriesUnknownRefWalksUp(t *testing.T) {
	s := Default()
	// A ref below a modeled node inherits from the nearest known ancestor.
	got := s.CategoriesFor("#user.home-info.postal.street.line2", nil)
	if !reflect.DeepEqual(got, []string{"demographic", "physical"}) {
		t.Errorf("descendant inherits = %v", got)
	}
	// Entirely unknown refs yield the declared categories.
	got = s.CategoriesFor("#custom.thing", []string{"health"})
	if !reflect.DeepEqual(got, []string{"health"}) {
		t.Errorf("unknown ref = %v", got)
	}
}

func TestLeaves(t *testing.T) {
	s := Default()
	leaves := s.Leaves("#user.name")
	if len(leaves) != 6 {
		t.Errorf("user.name leaves = %d, want 6 (personname structure)", len(leaves))
	}
	leaves = s.Leaves("#user.home-info.telecom")
	if len(leaves) != 20 {
		t.Errorf("telecom leaves = %d, want 20 (4 numbers x 5 fields)", len(leaves))
	}
	// A leaf expands to itself.
	leaves = s.Leaves("#user.gender")
	if len(leaves) != 1 || leaves[0].Ref != "user.gender" {
		t.Errorf("leaf expansion: %+v", leaves)
	}
	if got := s.Leaves("#no.such"); len(got) != 0 {
		t.Errorf("unknown expansion: %v", got)
	}
	// Memoization returns the identical slice.
	a := s.Leaves("#user.name")
	b := s.Leaves("#user.name")
	if len(a) > 0 && &a[0] != &b[0] {
		t.Error("Leaves not memoized")
	}
}

func TestSchemaShape(t *testing.T) {
	s := Default()
	refs := s.KnownRefs()
	if len(refs) < 150 {
		t.Errorf("schema unexpectedly small: %d refs", len(refs))
	}
	leaves := s.LeafRefs()
	if len(leaves) < 100 {
		t.Errorf("too few leaves: %d", len(leaves))
	}
	// user and thirdparty mirror each other.
	var userRefs, tpRefs []string
	for _, r := range refs {
		if strings.HasPrefix(r, "user.") {
			userRefs = append(userRefs, strings.TrimPrefix(r, "user."))
		}
		if strings.HasPrefix(r, "thirdparty.") {
			tpRefs = append(tpRefs, strings.TrimPrefix(r, "thirdparty."))
		}
	}
	if !reflect.DeepEqual(userRefs, tpRefs) {
		t.Error("thirdparty does not mirror user")
	}
}

func TestEveryRefHasResolvableCategories(t *testing.T) {
	s := Default()
	for _, ref := range s.KnownRefs() {
		e := s.Lookup(ref)
		cats := s.CategoriesFor(ref, []string{"declared"})
		if e.Variable {
			if !reflect.DeepEqual(cats, []string{"declared"}) {
				t.Errorf("%s: variable element should take declared cats, got %v", ref, cats)
			}
			continue
		}
		if len(cats) == 0 && !strings.EqualFold(ref, "dynamic") {
			// Only pure interior grouping nodes (user, thirdparty,
			// business, dynamic) may resolve to nothing... verify they
			// are roots.
			if strings.Contains(ref, ".") {
				t.Errorf("%s: no categories resolvable", ref)
			}
		}
	}
}

func TestCategoriesQuickDeterministic(t *testing.T) {
	s := Default()
	refs := s.KnownRefs()
	f := func(i uint16, declared []bool) bool {
		ref := refs[int(i)%len(refs)]
		var decl []string
		for j, b := range declared {
			if b && j < 3 {
				decl = append(decl, []string{"purchase", "health", "online"}[j])
			}
		}
		a := s.CategoriesFor(ref, decl)
		b := s.CategoriesFor(ref, decl)
		if !reflect.DeepEqual(a, b) {
			return false
		}
		// Result is sorted and unique.
		for k := 1; k < len(a); k++ {
			if a[k-1] >= a[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
