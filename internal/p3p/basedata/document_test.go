package basedata

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"p3pdb/internal/xmldom"
)

func TestDocumentXMLShape(t *testing.T) {
	xml := DocumentXML()
	doc, err := xmldom.ParseString(xml)
	if err != nil {
		t.Fatalf("schema document does not parse: %v", err)
	}
	if doc.Name != "DATASCHEMA" {
		t.Errorf("root = %s", doc.Name)
	}
	if len(doc.Children) != len(Default().KnownRefs()) {
		t.Errorf("definitions = %d, refs = %d", len(doc.Children), len(Default().KnownRefs()))
	}
	// Memoized: the same string comes back.
	if xml != DocumentXML() {
		t.Error("DocumentXML not stable")
	}
	// It is a substantial document, as the real base data schema was.
	if len(xml) < 10_000 {
		t.Errorf("schema document suspiciously small: %d bytes", len(xml))
	}
}

func TestDocumentLookupAgreesWithIndexed(t *testing.T) {
	s := Default()
	doc, err := xmldom.ParseString(DocumentXML())
	if err != nil {
		t.Fatal(err)
	}
	declared := []string{"purchase"}
	for _, ref := range s.KnownRefs() {
		naive := DocumentLookup(doc, "#"+ref, declared)

		// Indexed equivalent.
		var indexed []ExpandedRef
		leaves := s.Leaves(ref)
		if len(leaves) == 0 {
			indexed = []ExpandedRef{{Ref: ref, Categories: s.CategoriesFor(ref, declared)}}
		} else {
			for _, l := range leaves {
				indexed = append(indexed, ExpandedRef{Ref: l.Ref, Categories: s.CategoriesFor(l.Ref, declared)})
			}
		}

		sortRefs := func(rs []ExpandedRef) {
			sort.Slice(rs, func(i, j int) bool { return rs[i].Ref < rs[j].Ref })
		}
		sortRefs(naive)
		sortRefs(indexed)
		if !reflect.DeepEqual(naive, indexed) {
			t.Fatalf("disagreement on %s:\nnaive   %+v\nindexed %+v", ref, naive, indexed)
		}
	}
}

func TestDocumentLookupUnknownRef(t *testing.T) {
	doc, err := xmldom.ParseString(DocumentXML())
	if err != nil {
		t.Fatal(err)
	}
	out := DocumentLookup(doc, "#custom.thing", []string{"health", "health"})
	if len(out) != 1 || out[0].Ref != "custom.thing" {
		t.Fatalf("unknown ref: %+v", out)
	}
	if !reflect.DeepEqual(out[0].Categories, []string{"health"}) {
		t.Errorf("declared categories: %v", out[0].Categories)
	}
}

func TestDocumentMarksVariableElements(t *testing.T) {
	xml := DocumentXML()
	if !strings.Contains(xml, `name="dynamic.miscdata" variable="yes"`) {
		t.Error("miscdata not marked variable in the document")
	}
	doc, _ := xmldom.ParseString(xml)
	out := DocumentLookup(doc, "#dynamic.miscdata", []string{"financial"})
	if len(out) != 1 || !reflect.DeepEqual(out[0].Categories, []string{"financial"}) {
		t.Errorf("variable lookup: %+v", out)
	}
}
