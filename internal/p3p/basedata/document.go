package basedata

import (
	"strings"
	"sync"

	"p3pdb/internal/xmldom"
)

// ToDOM renders the base data schema as an XML document: a DATASCHEMA
// element containing one DATA-DEF element per data element, carrying its
// full dotted name and, where the schema fixes them, its CATEGORIES. This
// is the document form that 2002-era user agents fetched and consulted —
// the JRC engine resolved every DATA reference against it, which is why
// the paper's profiling found category augmentation dominating the native
// engine's matching time.
func (s *Schema) ToDOM() *xmldom.Node {
	const ns = "http://www.w3.org/2002/01/P3Pv1"
	root := xmldom.NewNS(ns, "DATASCHEMA")
	var emit func(e *Element)
	emit = func(e *Element) {
		def := xmldom.NewNS(ns, "DATA-DEF").SetAttr("name", e.Ref)
		if e.Variable {
			def.SetAttr("variable", "yes")
		}
		if len(e.Categories) > 0 {
			cats := xmldom.NewNS(ns, "CATEGORIES")
			for _, c := range e.Categories {
				cats.Add(xmldom.NewNS(ns, c))
			}
			def.Add(cats)
		}
		root.Add(def)
		for _, c := range e.Children {
			emit(c)
		}
	}
	for _, r := range s.roots {
		emit(r)
	}
	return root
}

var (
	docOnce sync.Once
	docXML  string
)

// DocumentXML returns the serialized base data schema document for the
// default schema, computed once. Clients that emulate document-consulting
// agents re-parse this text themselves.
func DocumentXML() string {
	docOnce.Do(func() {
		docXML = Default().ToDOM().String()
	})
	return docXML
}

// DocumentLookup performs a deliberately naive resolution of a data
// reference against a parsed schema document, the way a DOM-walking agent
// does it: scan the flat definition list for the reference and everything
// beneath it, decide leaves by rescanning, and resolve categories by
// prefix-walking upward. Complexity is O(document size) per call — this
// is the documented cost profile of the client-centric baseline, not an
// oversight; Schema.Lookup/CategoriesFor are the indexed equivalents.
//
// It returns the leaf refs covered by ref (ref itself when unknown) and
// each leaf's categories given the policy-declared categories.
func DocumentLookup(doc *xmldom.Node, ref string, declared []string) []ExpandedRef {
	bare := strings.TrimPrefix(ref, "#")
	defs := doc.Children

	// Pass 1: every definition at or below ref.
	var matches []*xmldom.Node
	for _, d := range defs {
		name, _ := d.Attr("name")
		if name == bare || strings.HasPrefix(name, bare+".") {
			matches = append(matches, d)
		}
	}
	if len(matches) == 0 {
		return []ExpandedRef{{Ref: bare, Categories: dedupeSorted(append([]string(nil), declared...))}}
	}

	// Pass 2: keep the leaves — definitions with no definition beneath
	// them (rescan per candidate, as the naive agent does).
	var out []ExpandedRef
	for _, m := range matches {
		name, _ := m.Attr("name")
		isLeaf := true
		for _, d := range defs {
			other, _ := d.Attr("name")
			if strings.HasPrefix(other, name+".") {
				isLeaf = false
				break
			}
		}
		if !isLeaf {
			continue
		}
		out = append(out, ExpandedRef{
			Ref:        name,
			Categories: documentCategories(defs, name, declared),
		})
	}
	return out
}

// ExpandedRef is one leaf produced by DocumentLookup.
type ExpandedRef struct {
	Ref        string
	Categories []string
}

// documentCategories resolves a leaf's categories by walking its prefix
// chain from most to least specific, scanning the definition list at each
// level.
func documentCategories(defs []*xmldom.Node, leaf string, declared []string) []string {
	prefix := leaf
	for {
		for _, d := range defs {
			name, _ := d.Attr("name")
			if name != prefix {
				continue
			}
			if v, _ := d.Attr("variable"); v == "yes" {
				return dedupeSorted(append([]string(nil), declared...))
			}
			if cats := d.Child("CATEGORIES"); cats != nil {
				var out []string
				for _, c := range cats.Children {
					out = append(out, c.Name)
				}
				return dedupeSorted(out)
			}
		}
		i := strings.LastIndexByte(prefix, '.')
		if i < 0 {
			return dedupeSorted(append([]string(nil), declared...))
		}
		prefix = prefix[:i]
	}
}
