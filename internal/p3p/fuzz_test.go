package p3p

import "testing"

// FuzzParsePolicies checks the policy parser never panics, and that any
// policy it accepts and validates round-trips through serialization.
func FuzzParsePolicies(f *testing.F) {
	f.Add(VolgaPolicyXML)
	f.Add(`<POLICY name="p"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`)
	f.Add(`<POLICIES><POLICY name="a"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY></POLICIES>`)
	f.Add(`<POLICY><BOGUS/></POLICY>`)
	f.Fuzz(func(t *testing.T, src string) {
		pols, err := ParsePolicies(src)
		if err != nil {
			return
		}
		for _, p := range pols {
			if len(p.Validate()) > 0 {
				continue // invalid policies need not round-trip
			}
			back, err := ParsePolicy(p.String())
			if err != nil {
				t.Fatalf("valid policy did not reparse: %v\n%s", err, p.String())
			}
			if len(back.Statements) != len(p.Statements) {
				t.Fatalf("statement count changed across round trip")
			}
		}
	})
}
