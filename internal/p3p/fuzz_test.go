package p3p

import (
	"os"
	"path/filepath"
	"testing"
)

// addCorpus seeds the fuzzer with every file in testdata/corpus —
// realistic documents drawn from the examples and the workload
// generator, which reach far deeper into the parser than hand-minimized
// literals.
func addCorpus(f *testing.F) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		f.Fatalf("seed corpus: %v", err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "corpus", e.Name()))
		if err != nil {
			f.Fatalf("seed corpus %s: %v", e.Name(), err)
		}
		f.Add(string(data))
	}
}

// FuzzParsePolicies checks the policy parser never panics, and that any
// policy it accepts and validates round-trips through serialization.
func FuzzParsePolicies(f *testing.F) {
	addCorpus(f)
	f.Add(VolgaPolicyXML)
	f.Add(`<POLICY name="p"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`)
	f.Add(`<POLICIES><POLICY name="a"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY></POLICIES>`)
	f.Add(`<POLICY><BOGUS/></POLICY>`)
	f.Fuzz(func(t *testing.T, src string) {
		pols, err := ParsePolicies(src)
		if err != nil {
			return
		}
		for _, p := range pols {
			if len(p.Validate()) > 0 {
				continue // invalid policies need not round-trip
			}
			back, err := ParsePolicy(p.String())
			if err != nil {
				t.Fatalf("valid policy did not reparse: %v\n%s", err, p.String())
			}
			if len(back.Statements) != len(p.Statements) {
				t.Fatalf("statement count changed across round trip")
			}
		}
	})
}
