package p3p

// VolgaPolicyXML is the example policy from the paper (Figure 1): Volga is
// a bookseller that collects name, postal address and purchase data to
// complete transactions, and offers opt-in email recommendations.
const VolgaPolicyXML = `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1"
    name="volga" discuri="http://volga.example.com/privacy.html">
  <ENTITY>
    <DATA-GROUP>
      <DATA ref="#business.name">Volga Booksellers</DATA>
      <DATA ref="#business.contact-info.online.email">privacy@volga.example.com</DATA>
    </DATA-GROUP>
  </ENTITY>
  <ACCESS><contact-and-other/></ACCESS>
  <STATEMENT>
    <CONSEQUENCE>We use this information to complete your current purchase.</CONSEQUENCE>
    <PURPOSE><current/></PURPOSE>
    <RECIPIENT><ours/><same/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.name"/>
      <DATA ref="#user.home-info.postal"/>
      <DATA ref="#dynamic.miscdata">
        <CATEGORIES><purchase/></CATEGORIES>
      </DATA>
    </DATA-GROUP>
  </STATEMENT>
  <STATEMENT>
    <CONSEQUENCE>With your consent, we email personalized book recommendations.</CONSEQUENCE>
    <PURPOSE>
      <individual-decision required="opt-in"/>
      <contact required="opt-in"/>
    </PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><business-practices/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.home-info.online.email"/>
      <DATA ref="#dynamic.miscdata">
        <CATEGORIES><purchase/></CATEGORIES>
      </DATA>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>`
