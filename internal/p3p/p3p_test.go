package p3p

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseVolga(t *testing.T) {
	p, err := ParsePolicy(VolgaPolicyXML)
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	if p.Name != "volga" {
		t.Errorf("name = %q", p.Name)
	}
	if p.Entity == nil || p.Entity.Name != "Volga Booksellers" {
		t.Errorf("entity: %+v", p.Entity)
	}
	if p.Access != "contact-and-other" {
		t.Errorf("access = %q", p.Access)
	}
	if len(p.Statements) != 2 {
		t.Fatalf("statements = %d", len(p.Statements))
	}
	s1 := p.Statements[0]
	if len(s1.Purposes) != 1 || s1.Purposes[0].Value != "current" {
		t.Errorf("s1 purposes: %+v", s1.Purposes)
	}
	if s1.Purposes[0].EffectiveRequired() != "always" {
		t.Errorf("default required: %q", s1.Purposes[0].EffectiveRequired())
	}
	if len(s1.Recipients) != 2 || s1.Recipients[1].Value != "same" {
		t.Errorf("s1 recipients: %+v", s1.Recipients)
	}
	if s1.Retention != "stated-purpose" {
		t.Errorf("s1 retention: %q", s1.Retention)
	}
	if len(s1.DataGroups) != 1 || len(s1.DataGroups[0].Data) != 3 {
		t.Fatalf("s1 data groups: %+v", s1.DataGroups)
	}
	misc := s1.DataGroups[0].Data[2]
	if misc.Ref != "#dynamic.miscdata" || !reflect.DeepEqual(misc.Categories, []string{"purchase"}) {
		t.Errorf("miscdata: %+v", misc)
	}
	s2 := p.Statements[1]
	if s2.Purposes[0].Value != "individual-decision" || s2.Purposes[0].Required != "opt-in" {
		t.Errorf("s2 purposes: %+v", s2.Purposes)
	}
}

func TestValidateVolga(t *testing.T) {
	p, err := ParsePolicy(VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Errorf("Volga should validate, got %v", errs)
	}
}

func TestRoundTrip(t *testing.T) {
	p, err := ParsePolicy(VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	out := p.String()
	p2, err := ParsePolicy(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Errorf("round trip mismatch:\n%#v\nvs\n%#v", p, p2)
	}
}

func TestParsePoliciesWrapper(t *testing.T) {
	doc := `<POLICIES xmlns="http://www.w3.org/2002/01/P3Pv1">` +
		strings.ReplaceAll(VolgaPolicyXML, ` xmlns="http://www.w3.org/2002/01/P3Pv1"`, "") +
		strings.ReplaceAll(strings.ReplaceAll(VolgaPolicyXML, ` xmlns="http://www.w3.org/2002/01/P3Pv1"`, ""), `name="volga"`, `name="volga2"`) +
		`</POLICIES>`
	ps, err := ParsePolicies(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 || ps[1].Name != "volga2" {
		t.Errorf("got %d policies", len(ps))
	}
	if _, err := ParsePolicy(doc); err == nil {
		t.Error("ParsePolicy of multi-policy doc should fail")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`<NOTAPOLICY/>`,
		`<POLICY><BOGUS/></POLICY>`,
		`<POLICY><STATEMENT><BOGUS/></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><RETENTION><a/><b/></RETENTION></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA/></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICIES></POLICIES>`,
	}
	for _, c := range cases {
		if _, err := ParsePolicies(c); err == nil {
			t.Errorf("ParsePolicies(%q): expected error", c)
		}
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	p := &Policy{
		Name:   "",
		Access: "bogus",
		Statements: []*Statement{
			{
				Purposes:   []PurposeValue{{Value: "not-a-purpose"}, {Value: "current", Required: "sometimes"}, {Value: "current"}, {Value: "current"}},
				Recipients: []RecipientValue{{Value: "martians"}},
				Retention:  "forever",
				DataGroups: []*DataGroup{
					{},
					{Data: []*Data{{Ref: "user.name"}, {Ref: "#user.name", Categories: []string{"nonsense"}}}},
				},
			},
			{}, // missing everything
		},
		Disputes: []*Dispute{{ResolutionType: "bogus", Remedies: []string{"bogus"}}},
	}
	errs := p.Validate()
	wantSubstrings := []string{
		"missing name",
		"unknown ACCESS",
		"unknown purpose",
		"bad required",
		"duplicate purpose",
		"unknown recipient",
		"unknown retention",
		"empty DATA-GROUP",
		"must start with '#'",
		"unknown category",
		"missing PURPOSE",
		"missing RECIPIENT",
		"missing RETENTION",
		"unknown resolution-type",
		"unknown remedy",
	}
	joined := ""
	for _, e := range errs {
		joined += e.Error() + "\n"
	}
	for _, want := range wantSubstrings {
		if !strings.Contains(joined, want) {
			t.Errorf("validation missing %q in:\n%s", want, joined)
		}
	}
	if p.MustValid() == nil {
		t.Error("MustValid should fail")
	}
}

func TestNonIdentifiableStatement(t *testing.T) {
	doc := `<POLICY name="anon"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`
	p, err := ParsePolicy(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Statements[0].NonIdentifiable {
		t.Error("NON-IDENTIFIABLE not detected")
	}
	if errs := p.Validate(); len(errs) != 0 {
		t.Errorf("non-identifiable statement should not require purpose: %v", errs)
	}
}

func TestTestOnlyPolicy(t *testing.T) {
	doc := `<POLICY name="t"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT><TEST/></POLICY>`
	p, err := ParsePolicy(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.TestOnly {
		t.Error("TEST not detected")
	}
}

func TestClone(t *testing.T) {
	p, err := ParsePolicy(VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if !reflect.DeepEqual(p, c) {
		t.Fatal("clone differs")
	}
	c.Statements[0].Purposes[0].Value = "admin"
	c.Statements[0].DataGroups[0].Data[0].Categories = append(c.Statements[0].DataGroups[0].Data[0].Categories, "health")
	if p.Statements[0].Purposes[0].Value != "current" {
		t.Error("clone shares purpose storage")
	}
	if len(p.Statements[0].DataGroups[0].Data[0].Categories) != 0 {
		t.Error("clone shares category storage")
	}
}

func TestVocabulary(t *testing.T) {
	if len(Purposes) != 12 {
		t.Errorf("P3P defines 12 purposes, have %d", len(Purposes))
	}
	if len(Recipients) != 6 {
		t.Errorf("P3P defines 6 recipients, have %d", len(Recipients))
	}
	if len(Retentions) != 5 {
		t.Errorf("P3P defines 5 retention values, have %d", len(Retentions))
	}
	if len(Categories) != 17 {
		t.Errorf("P3P defines 17 categories, have %d", len(Categories))
	}
	if !IsPurpose("individual-decision") || IsPurpose("nope") {
		t.Error("IsPurpose broken")
	}
	if !IsRecipient("other-recipient") || IsRecipient("current") {
		t.Error("IsRecipient broken")
	}
	if !IsRetention("no-retention") || IsRetention("ours") {
		t.Error("IsRetention broken")
	}
	if !IsCategory("uniqueid") || IsCategory("admin") {
		t.Error("IsCategory broken")
	}
	if !IsRequired("opt-out") || IsRequired("maybe") {
		t.Error("IsRequired broken")
	}
	if !IsAccess("nonident") || IsAccess("x") {
		t.Error("IsAccess broken")
	}
}
