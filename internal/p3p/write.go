package p3p

import (
	"p3pdb/internal/xmldom"
)

// ToDOM renders the policy as a POLICY element in the P3P namespace. The
// output round-trips through PolicyFromDOM.
func (p *Policy) ToDOM() *xmldom.Node {
	el := xmldom.NewNS(NS, "POLICY")
	if p.Name != "" {
		el.SetAttr("name", p.Name)
	}
	if p.Discuri != "" {
		el.SetAttr("discuri", p.Discuri)
	}
	if p.Opturi != "" {
		el.SetAttr("opturi", p.Opturi)
	}
	if p.Entity != nil {
		el.Add(p.Entity.toDOM())
	}
	if p.Access != "" {
		el.Add(xmldom.NewNS(NS, "ACCESS").Add(xmldom.NewNS(NS, p.Access)))
	}
	if len(p.Disputes) > 0 {
		dg := xmldom.NewNS(NS, "DISPUTES-GROUP")
		for _, d := range p.Disputes {
			de := xmldom.NewNS(NS, "DISPUTES")
			if d.ResolutionType != "" {
				de.SetAttr("resolution-type", d.ResolutionType)
			}
			if d.Service != "" {
				de.SetAttr("service", d.Service)
			}
			if d.ShortDescription != "" {
				de.SetAttr("short-description", d.ShortDescription)
			}
			if len(d.Remedies) > 0 {
				rem := xmldom.NewNS(NS, "REMEDIES")
				for _, r := range d.Remedies {
					rem.Add(xmldom.NewNS(NS, r))
				}
				de.Add(rem)
			}
			dg.Add(de)
		}
		el.Add(dg)
	}
	for _, s := range p.Statements {
		el.Add(s.toDOM())
	}
	if p.TestOnly {
		el.Add(xmldom.NewNS(NS, "TEST"))
	}
	return el
}

// String renders the policy as an XML document.
func (p *Policy) String() string { return p.ToDOM().String() }

// PoliciesToDOM wraps multiple policies in a POLICIES element, the shape of
// a site's policy file.
func PoliciesToDOM(ps []*Policy) *xmldom.Node {
	root := xmldom.NewNS(NS, "POLICIES")
	for _, p := range ps {
		root.Add(p.ToDOM())
	}
	return root
}

func (e *Entity) toDOM() *xmldom.Node {
	dg := xmldom.NewNS(NS, "DATA-GROUP")
	add := func(ref, val string) {
		if val == "" {
			return
		}
		dg.Add(xmldom.NewNS(NS, "DATA").SetAttr("ref", ref).SetText(val))
	}
	add("#business.name", e.Name)
	add("#business.contact-info.postal.street", e.Street)
	add("#business.contact-info.postal.city", e.City)
	add("#business.contact-info.postal.country", e.Country)
	add("#business.contact-info.online.email", e.Email)
	add("#business.contact-info.telecom.telephone.number", e.Phone)
	return xmldom.NewNS(NS, "ENTITY").Add(dg)
}

func (s *Statement) toDOM() *xmldom.Node {
	el := xmldom.NewNS(NS, "STATEMENT")
	if s.Consequence != "" {
		el.Add(xmldom.NewNS(NS, "CONSEQUENCE").SetText(s.Consequence))
	}
	if s.NonIdentifiable {
		el.Add(xmldom.NewNS(NS, "NON-IDENTIFIABLE"))
	}
	if len(s.Purposes) > 0 {
		pe := xmldom.NewNS(NS, "PURPOSE")
		for _, p := range s.Purposes {
			v := xmldom.NewNS(NS, p.Value)
			if p.Required != "" {
				v.SetAttr("required", p.Required)
			}
			pe.Add(v)
		}
		el.Add(pe)
	}
	if len(s.Recipients) > 0 {
		re := xmldom.NewNS(NS, "RECIPIENT")
		for _, r := range s.Recipients {
			v := xmldom.NewNS(NS, r.Value)
			if r.Required != "" {
				v.SetAttr("required", r.Required)
			}
			re.Add(v)
		}
		el.Add(re)
	}
	if s.Retention != "" {
		el.Add(xmldom.NewNS(NS, "RETENTION").Add(xmldom.NewNS(NS, s.Retention)))
	}
	for _, g := range s.DataGroups {
		ge := xmldom.NewNS(NS, "DATA-GROUP")
		if g.Base != "" {
			ge.SetAttr("base", g.Base)
		}
		for _, d := range g.Data {
			de := xmldom.NewNS(NS, "DATA").SetAttr("ref", d.Ref)
			if d.Optional {
				de.SetAttr("optional", "yes")
			}
			if len(d.Categories) > 0 {
				ce := xmldom.NewNS(NS, "CATEGORIES")
				for _, c := range d.Categories {
					ce.Add(xmldom.NewNS(NS, c))
				}
				de.Add(ce)
			}
			ge.Add(de)
		}
		el.Add(ge)
	}
	return el
}
