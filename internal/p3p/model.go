package p3p

// Policy is a parsed P3P privacy policy: the practices a site declares for
// (a portion of) its service.
type Policy struct {
	// Name identifies the policy within the site's policy file; the
	// reference file and policy URIs use it as a fragment (#name).
	Name string
	// Discuri points to the human-readable privacy statement.
	Discuri string
	// Opturi points to instructions for opting in or out.
	Opturi string
	// Entity describes the legal entity making the statement.
	Entity *Entity
	// Access is the site's disclosure about access to identified data.
	Access string
	// Disputes lists dispute-resolution procedures.
	Disputes []*Dispute
	// Statements are the policy's data practices.
	Statements []*Statement
	// TestOnly marks policies carrying a TEST element, which signals
	// that the policy is an example and must be ignored by agents.
	TestOnly bool
}

// Entity identifies the site's legal entity. P3P expresses the fields as
// DATA elements from the business data schema; we model the common ones
// directly.
type Entity struct {
	Name    string
	Street  string
	City    string
	Country string
	Email   string
	Phone   string
}

// Dispute is one DISPUTES element within DISPUTES-GROUP.
type Dispute struct {
	ResolutionType   string // service | independent | court | law
	Service          string // URI of the dispute resolution service
	ShortDescription string
	Remedies         []string // correct | money | law
}

// Statement is one STATEMENT element: a set of purposes, recipients, a
// retention policy, and the data groups they cover.
type Statement struct {
	// Consequence is the human-readable explanation of why the data is
	// collected; optional.
	Consequence string
	// NonIdentifiable is set when the statement carries the
	// NON-IDENTIFIABLE element.
	NonIdentifiable bool
	// Purposes lists the PURPOSE values with their required attributes.
	Purposes []PurposeValue
	// Recipients lists the RECIPIENT values with their required attributes.
	Recipients []RecipientValue
	// Retention is the single RETENTION subelement value.
	Retention string
	// DataGroups lists the DATA-GROUP elements.
	DataGroups []*DataGroup
}

// PurposeValue is one purpose subelement, e.g. <contact required="opt-in"/>.
type PurposeValue struct {
	Value    string
	Required string // always | opt-in | opt-out; empty means DefaultRequired
}

// EffectiveRequired returns the required attribute with P3P defaulting
// applied: an absent attribute means "always".
func (p PurposeValue) EffectiveRequired() string {
	if p.Required == "" {
		return DefaultRequired
	}
	return p.Required
}

// RecipientValue is one recipient subelement, e.g. <ours/>.
type RecipientValue struct {
	Value    string
	Required string
}

// EffectiveRequired returns the required attribute with defaulting applied.
func (r RecipientValue) EffectiveRequired() string {
	if r.Required == "" {
		return DefaultRequired
	}
	return r.Required
}

// DataGroup is one DATA-GROUP element.
type DataGroup struct {
	// Base overrides the base data schema URI; empty means the P3P base
	// data schema.
	Base string
	// Data lists the DATA elements.
	Data []*Data
}

// Data is one DATA element: a reference into a data schema plus any
// explicitly declared categories.
type Data struct {
	// Ref is the data reference, e.g. "#user.home-info.postal".
	Ref string
	// Optional is the optional attribute ("yes" maps to true).
	Optional bool
	// Categories are the explicitly declared CATEGORIES values. For
	// fixed-category data elements the base data schema supplies more;
	// see the basedata package.
	Categories []string
}

// Clone returns a deep copy of the policy.
func (p *Policy) Clone() *Policy {
	c := *p
	if p.Entity != nil {
		e := *p.Entity
		c.Entity = &e
	}
	if p.Disputes != nil {
		c.Disputes = make([]*Dispute, len(p.Disputes))
		for i, d := range p.Disputes {
			dd := *d
			dd.Remedies = append([]string(nil), d.Remedies...)
			c.Disputes[i] = &dd
		}
	}
	c.Statements = make([]*Statement, len(p.Statements))
	for i, s := range p.Statements {
		ss := *s
		ss.Purposes = append([]PurposeValue(nil), s.Purposes...)
		ss.Recipients = append([]RecipientValue(nil), s.Recipients...)
		ss.DataGroups = make([]*DataGroup, len(s.DataGroups))
		for j, g := range s.DataGroups {
			gg := *g
			gg.Data = make([]*Data, len(g.Data))
			for k, d := range g.Data {
				dd := *d
				dd.Categories = append([]string(nil), d.Categories...)
				gg.Data[k] = &dd
			}
			ss.DataGroups[j] = &gg
		}
		c.Statements[i] = &ss
	}
	return &c
}
