// Package p3p models the W3C Platform for Privacy Preferences 1.0 policy
// language: the POLICY / STATEMENT / PURPOSE / RECIPIENT / RETENTION /
// DATA-GROUP vocabulary, parsing from and serialization to the XML format
// the Recommendation defines, and validation against the fixed vocabularies
// (12 purposes, 6 recipients, 5 retention values, 17 categories).
package p3p

// NS is the P3P 1.0 namespace URI.
const NS = "http://www.w3.org/2002/01/P3Pv1"

// Purposes are the 12 predefined PURPOSE values of P3P 1.0.
var Purposes = []string{
	"current",             // completion and support of activity for which data was provided
	"admin",               // web site and system administration
	"develop",             // research and development
	"tailoring",           // one-time tailoring of the current visit
	"pseudo-analysis",     // pseudonymous analysis
	"pseudo-decision",     // pseudonymous decision-making
	"individual-analysis", // analysis of identified individuals
	"individual-decision", // inferring habits, interests, and other characteristics
	"contact",             // contacting visitors for marketing
	"historical",          // historical preservation
	"telemarketing",       // telephone marketing
	"other-purpose",       // other uses, described in human-readable text
}

// Recipients are the 6 predefined RECIPIENT values of P3P 1.0.
var Recipients = []string{
	"ours",            // ourselves and/or entities acting as our agents
	"delivery",        // delivery services possibly following different practices
	"same",            // legal entities following our practices
	"other-recipient", // legal entities following different but accountable practices
	"unrelated",       // legal entities whose practices are unknown to us
	"public",          // public fora
}

// Retentions are the 5 predefined RETENTION values of P3P 1.0.
var Retentions = []string{
	"no-retention",       // not retained beyond the current online interaction
	"stated-purpose",     // discarded at the earliest time possible
	"legal-requirement",  // retained as required by law
	"business-practices", // long term retention with a destruction timetable
	"indefinitely",       // retained indefinitely
}

// Categories are the 17 predefined CATEGORIES values of P3P 1.0.
var Categories = []string{
	"physical",    // physical contact information
	"online",      // online contact information
	"uniqueid",    // unique identifiers
	"purchase",    // purchase information
	"financial",   // financial information
	"computer",    // computer information
	"navigation",  // navigation and clickstream data
	"interactive", // interactive data actively generated
	"demographic", // demographic and socioeconomic data
	"content",     // the content of communications
	"state",       // state-management mechanisms (cookies)
	"political",   // political or religious affiliation
	"health",      // health information
	"preference",  // individual tastes
	"location",    // precise geographic location
	"government",  // government-issued identifiers
	"other-category",
}

// AccessValues are the predefined ACCESS values.
var AccessValues = []string{
	"nonident", "all", "contact-and-other", "ident-contact", "other-ident", "none",
}

// RequiredValues are the legal values of the "required" attribute on
// purpose and recipient value elements. DefaultRequired applies when the
// attribute is absent.
var RequiredValues = []string{"always", "opt-in", "opt-out"}

// DefaultRequired is the value presumed for an absent "required" attribute.
const DefaultRequired = "always"

// RemedyValues are the predefined REMEDIES values on DISPUTES.
var RemedyValues = []string{"correct", "money", "law"}

// DisputeResolutionTypes are the resolution-type values on DISPUTES.
var DisputeResolutionTypes = []string{"service", "independent", "court", "law"}

func contains(set []string, v string) bool {
	for _, s := range set {
		if s == v {
			return true
		}
	}
	return false
}

// IsPurpose reports whether v is a predefined PURPOSE value.
func IsPurpose(v string) bool { return contains(Purposes, v) }

// IsRecipient reports whether v is a predefined RECIPIENT value.
func IsRecipient(v string) bool { return contains(Recipients, v) }

// IsRetention reports whether v is a predefined RETENTION value.
func IsRetention(v string) bool { return contains(Retentions, v) }

// IsCategory reports whether v is a predefined CATEGORIES value.
func IsCategory(v string) bool { return contains(Categories, v) }

// IsRequired reports whether v is a legal "required" attribute value.
func IsRequired(v string) bool { return contains(RequiredValues, v) }

// IsAccess reports whether v is a predefined ACCESS value.
func IsAccess(v string) bool { return contains(AccessValues, v) }
