package p3p

import (
	"fmt"
	"strings"

	"p3pdb/internal/xmldom"
)

// ParsePolicies parses a P3P policy file, which is either a POLICIES
// element wrapping one or more POLICY elements, or a bare POLICY.
func ParsePolicies(src string) ([]*Policy, error) {
	root, err := xmldom.ParseString(src)
	if err != nil {
		return nil, err
	}
	return PoliciesFromDOM(root)
}

// ParsePolicy parses a document that must contain exactly one policy.
func ParsePolicy(src string) (*Policy, error) {
	ps, err := ParsePolicies(src)
	if err != nil {
		return nil, err
	}
	if len(ps) != 1 {
		return nil, fmt.Errorf("p3p: document contains %d policies, want exactly 1", len(ps))
	}
	return ps[0], nil
}

// PoliciesFromDOM extracts policies from a parsed document.
func PoliciesFromDOM(root *xmldom.Node) ([]*Policy, error) {
	switch root.Name {
	case "POLICY":
		p, err := PolicyFromDOM(root)
		if err != nil {
			return nil, err
		}
		return []*Policy{p}, nil
	case "POLICIES":
		var out []*Policy
		for _, c := range root.ChildrenNamed("POLICY") {
			p, err := PolicyFromDOM(c)
			if err != nil {
				return nil, err
			}
			out = append(out, p)
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("p3p: POLICIES element contains no POLICY")
		}
		return out, nil
	}
	return nil, fmt.Errorf("p3p: unexpected root element %s (want POLICY or POLICIES)", root.Name)
}

// PolicyFromDOM converts a POLICY element into a Policy.
func PolicyFromDOM(el *xmldom.Node) (*Policy, error) {
	if el.Name != "POLICY" {
		return nil, fmt.Errorf("p3p: expected POLICY element, got %s", el.Name)
	}
	p := &Policy{
		Name:    el.AttrDefault("name", ""),
		Discuri: el.AttrDefault("discuri", ""),
		Opturi:  el.AttrDefault("opturi", ""),
	}
	for _, c := range el.Children {
		switch c.Name {
		case "ENTITY":
			e, err := entityFromDOM(c)
			if err != nil {
				return nil, err
			}
			p.Entity = e
		case "ACCESS":
			if len(c.Children) != 1 {
				return nil, fmt.Errorf("p3p: ACCESS must have exactly one value element")
			}
			p.Access = c.Children[0].Name
		case "DISPUTES-GROUP":
			for _, d := range c.ChildrenNamed("DISPUTES") {
				disp := &Dispute{
					ResolutionType:   d.AttrDefault("resolution-type", ""),
					Service:          d.AttrDefault("service", ""),
					ShortDescription: d.AttrDefault("short-description", ""),
				}
				if rem := d.Child("REMEDIES"); rem != nil {
					for _, r := range rem.Children {
						disp.Remedies = append(disp.Remedies, r.Name)
					}
				}
				p.Disputes = append(p.Disputes, disp)
			}
		case "STATEMENT":
			s, err := statementFromDOM(c)
			if err != nil {
				return nil, err
			}
			p.Statements = append(p.Statements, s)
		case "TEST":
			p.TestOnly = true
		case "EXPIRY", "EXTENSION", "DATASCHEMA":
			// Recognized but not modeled; preference matching never
			// touches them.
		default:
			return nil, fmt.Errorf("p3p: unexpected element %s in POLICY", c.Name)
		}
	}
	return p, nil
}

func entityFromDOM(el *xmldom.Node) (*Entity, error) {
	e := &Entity{}
	dg := el.Child("DATA-GROUP")
	if dg == nil {
		return e, nil
	}
	for _, d := range dg.ChildrenNamed("DATA") {
		ref, _ := d.Attr("ref")
		val := d.Text
		switch ref {
		case "#business.name":
			e.Name = val
		case "#business.contact-info.postal.street":
			e.Street = val
		case "#business.contact-info.postal.city":
			e.City = val
		case "#business.contact-info.postal.country":
			e.Country = val
		case "#business.contact-info.online.email":
			e.Email = val
		case "#business.contact-info.telecom.telephone.number":
			e.Phone = val
		}
	}
	return e, nil
}

func statementFromDOM(el *xmldom.Node) (*Statement, error) {
	s := &Statement{}
	for _, c := range el.Children {
		switch c.Name {
		case "CONSEQUENCE":
			s.Consequence = c.Text
		case "NON-IDENTIFIABLE":
			s.NonIdentifiable = true
		case "PURPOSE":
			for _, v := range c.Children {
				s.Purposes = append(s.Purposes, PurposeValue{
					Value:    v.Name,
					Required: v.AttrDefault("required", ""),
				})
			}
		case "RECIPIENT":
			for _, v := range c.Children {
				s.Recipients = append(s.Recipients, RecipientValue{
					Value:    v.Name,
					Required: v.AttrDefault("required", ""),
				})
			}
		case "RETENTION":
			if len(c.Children) != 1 {
				return nil, fmt.Errorf("p3p: RETENTION must have exactly one value element, got %d", len(c.Children))
			}
			s.Retention = c.Children[0].Name
		case "DATA-GROUP":
			g := &DataGroup{Base: c.AttrDefault("base", "")}
			for _, d := range c.ChildrenNamed("DATA") {
				ref, ok := d.Attr("ref")
				if !ok {
					return nil, fmt.Errorf("p3p: DATA element without ref attribute")
				}
				data := &Data{
					Ref:      ref,
					Optional: strings.EqualFold(d.AttrDefault("optional", "no"), "yes"),
				}
				if cats := d.Child("CATEGORIES"); cats != nil {
					for _, cat := range cats.Children {
						data.Categories = append(data.Categories, cat.Name)
					}
				}
				g.Data = append(g.Data, data)
			}
			s.DataGroups = append(s.DataGroups, g)
		case "EXTENSION":
			// ignored
		default:
			return nil, fmt.Errorf("p3p: unexpected element %s in STATEMENT", c.Name)
		}
	}
	return s, nil
}
