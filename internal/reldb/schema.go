package reldb

import (
	"fmt"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name     string
	Type     Kind
	Nullable bool
}

// TableSchema describes a table: its columns, primary key, and secondary
// indexes. Column and table name lookups are case-insensitive, mirroring
// SQL identifier semantics.
type TableSchema struct {
	Name       string
	Columns    []Column
	PrimaryKey []string // column names; empty means no primary key

	byName map[string]int // lowercase column name -> ordinal
}

// NewTableSchema builds a schema and validates it: column names must be
// unique (case-insensitively) and the primary key must reference existing
// columns.
func NewTableSchema(name string, cols []Column, primaryKey []string) (*TableSchema, error) {
	if name == "" {
		return nil, fmt.Errorf("reldb: table name must not be empty")
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("reldb: table %s: at least one column required", name)
	}
	s := &TableSchema{Name: name, Columns: cols, PrimaryKey: primaryKey, byName: map[string]int{}}
	for i, c := range cols {
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("reldb: table %s: duplicate column %s", name, c.Name)
		}
		s.byName[key] = i
	}
	for _, pk := range primaryKey {
		if _, ok := s.byName[strings.ToLower(pk)]; !ok {
			return nil, fmt.Errorf("reldb: table %s: primary key column %s not defined", name, pk)
		}
	}
	return s, nil
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (s *TableSchema) ColumnIndex(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// ordinals maps column names to ordinals, erroring on unknown names.
func (s *TableSchema) ordinals(names []string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		ord := s.ColumnIndex(n)
		if ord < 0 {
			return nil, fmt.Errorf("reldb: table %s has no column %s", s.Name, n)
		}
		out[i] = ord
	}
	return out, nil
}
