package reldb

import "testing"

// FuzzParse checks the SQL parser never panics on arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT 1`,
		`SELECT * FROM t WHERE a = 'x' AND EXISTS (SELECT * FROM u WHERE u.id = t.id)`,
		`INSERT INTO t (a, b) VALUES (1, 'x''y')`,
		`CREATE TABLE t (a INTEGER NOT NULL, PRIMARY KEY (a))`,
		`UPDATE t SET a = a + 1 WHERE b IS NOT NULL`,
		`DELETE FROM t WHERE a IN (1, 2, NULL)`,
		`SELECT COUNT(DISTINCT a) FROM t GROUP BY b HAVING COUNT(*) > 1 ORDER BY b DESC LIMIT 3`,
		`SELECT CASE WHEN a LIKE 'x\%' THEN 1 ELSE 2 END FROM t`,
		`SELECT * FROM (SELECT 1 AS x) AS d FETCH FIRST 1 ROWS ONLY`,
		`SELEC`, `SELECT FROM`, `'unterminated`, `"q`, `SELECT * FROM t WHERE (((`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Parse must return an error or an AST, never panic.
		_, _ = Parse(src)
	})
}

// FuzzLike cross-checks the LIKE matcher against the reference
// implementation on arbitrary inputs.
func FuzzLike(f *testing.F) {
	f.Add("abc", "a%")
	f.Add("", "%")
	f.Add("a_b", `a\_b`)
	f.Add("mississippi", "%iss%ppi")
	f.Fuzz(func(t *testing.T, s, p string) {
		if len(s) > 256 || len(p) > 64 {
			return
		}
		got := likeMatch(s, p)
		want := likeRefDP(s, p)
		if got != want {
			t.Fatalf("likeMatch(%q,%q) = %v, reference %v", s, p, got, want)
		}
	})
}

// likeRefDP is a dynamic-programming reference for LIKE with escapes:
// O(len(s) x len(p)), immune to the exponential blowup a naive recursive
// reference hits on runs of '%'.
func likeRefDP(s, p string) bool {
	// tokens: (literal byte) | any-one | any-run
	type tok struct {
		kind byte // 'l', '_', '%'
		lit  byte
	}
	var toks []tok
	for i := 0; i < len(p); i++ {
		switch p[i] {
		case '%':
			toks = append(toks, tok{kind: '%'})
		case '_':
			toks = append(toks, tok{kind: '_'})
		case '\\':
			if i+1 < len(p) {
				toks = append(toks, tok{kind: 'l', lit: p[i+1]})
				i++
			} else {
				toks = append(toks, tok{kind: 'l', lit: '\\'})
			}
		default:
			toks = append(toks, tok{kind: 'l', lit: p[i]})
		}
	}
	// dp[j] = does toks[:j] match s[:i] for the current i.
	dp := make([]bool, len(toks)+1)
	next := make([]bool, len(toks)+1)
	dp[0] = true
	for j := 1; j <= len(toks); j++ {
		dp[j] = dp[j-1] && toks[j-1].kind == '%'
	}
	for i := 1; i <= len(s); i++ {
		next[0] = false
		for j := 1; j <= len(toks); j++ {
			switch toks[j-1].kind {
			case '%':
				next[j] = next[j-1] || dp[j]
			case '_':
				next[j] = dp[j-1]
			default:
				next[j] = dp[j-1] && s[i-1] == toks[j-1].lit
			}
		}
		dp, next = next, dp
	}
	return dp[len(toks)]
}
