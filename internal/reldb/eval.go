package reldb

import (
	"fmt"
	"strings"
)

// binding associates a FROM-item name with a row shape and the current row
// during iteration.
type binding struct {
	name string   // lowercased alias/table name
	cols []string // column names (lowercased)
	row  []Value  // current row during iteration
}

func (b *binding) colIndex(name string) int {
	name = strings.ToLower(name)
	for i, c := range b.cols {
		if c == name {
			return i
		}
	}
	return -1
}

// env is a lexical scope of bindings. Subqueries get a child env whose
// parent is the enclosing query's env, which is what makes correlated
// EXISTS subqueries work.
type env struct {
	bindings []*binding
	parent   *env
}

// resolve finds the binding and ordinal for a column reference, searching
// inner scopes before outer ones. An unqualified name must resolve
// unambiguously within the innermost scope that knows it.
func (e *env) resolve(table, column string) (*binding, int, error) {
	table = strings.ToLower(table)
	for scope := e; scope != nil; scope = scope.parent {
		if table != "" {
			for _, b := range scope.bindings {
				if b.name == table {
					if i := b.colIndex(column); i >= 0 {
						return b, i, nil
					}
					return nil, 0, fmt.Errorf("sql: column %s.%s does not exist", table, column)
				}
			}
			continue // alias not in this scope; look outward
		}
		var found *binding
		idx := -1
		for _, b := range scope.bindings {
			if i := b.colIndex(column); i >= 0 {
				if found != nil {
					return nil, 0, fmt.Errorf("sql: column %s is ambiguous", column)
				}
				found, idx = b, i
			}
		}
		if found != nil {
			return found, idx, nil
		}
	}
	if table != "" {
		return nil, 0, fmt.Errorf("sql: unknown table or alias %s", table)
	}
	return nil, 0, fmt.Errorf("sql: column %s does not exist", column)
}

// evalCtx carries everything expression evaluation needs.
type evalCtx struct {
	db     *DB
	env    *env
	params []Value
	st     *execState
}

// eval evaluates a scalar expression under SQL three-valued logic: NULL
// propagates through operators, and boolean operators follow Kleene logic.
func (c *evalCtx) eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Value, nil

	case *Param:
		if x.Index >= len(c.params) {
			return Null, fmt.Errorf("sql: parameter %d not bound (have %d)", x.Index+1, len(c.params))
		}
		return c.params[x.Index], nil

	case *ColumnRef:
		b, i, err := c.env.resolve(x.Table, x.Column)
		if err != nil {
			return Null, err
		}
		return b.row[i], nil

	case *UnaryExpr:
		v, err := c.eval(x.Operand)
		if err != nil {
			return Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null, nil
			}
			b, _ := v.AsBool()
			return Bool(!b), nil
		case "-":
			if v.IsNull() {
				return Null, nil
			}
			if v.Kind() == KindFloat {
				f, _ := v.AsFloat()
				return Float(-f), nil
			}
			n, ok := v.AsInt()
			if !ok {
				return Null, fmt.Errorf("sql: cannot negate %s", v.Kind())
			}
			return Int(-n), nil
		}
		return Null, fmt.Errorf("sql: unknown unary operator %s", x.Op)

	case *BinaryExpr:
		return c.evalBinary(x)

	case *IsNullExpr:
		v, err := c.eval(x.Operand)
		if err != nil {
			return Null, err
		}
		if x.Negated {
			return Bool(!v.IsNull()), nil
		}
		return Bool(v.IsNull()), nil

	case *InExpr:
		return c.evalIn(x)

	case *ExistsExpr:
		rows, err := c.db.execSelect(x.Subquery, c.env, c.params, 1, c.st)
		if err != nil {
			return Null, err
		}
		found := len(rows.Data) > 0
		if x.Negated {
			found = !found
		}
		return Bool(found), nil

	case *SubqueryExpr:
		rows, err := c.db.execSelect(x.Subquery, c.env, c.params, 2, c.st)
		if err != nil {
			return Null, err
		}
		if len(rows.Data) == 0 {
			return Null, nil
		}
		if len(rows.Data) > 1 {
			return Null, fmt.Errorf("sql: scalar subquery returned %d rows", len(rows.Data))
		}
		if len(rows.Data[0]) != 1 {
			return Null, fmt.Errorf("sql: scalar subquery returned %d columns", len(rows.Data[0]))
		}
		return rows.Data[0][0], nil

	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return Null, fmt.Errorf("sql: aggregate %s used outside grouped query", x.Name)
		}
		return c.evalScalarFunc(x)

	case *CaseExpr:
		for _, w := range x.Whens {
			cond, err := c.eval(w.Cond)
			if err != nil {
				return Null, err
			}
			if b, known := cond.AsBool(); known && b {
				return c.eval(w.Then)
			}
		}
		if x.Else != nil {
			return c.eval(x.Else)
		}
		return Null, nil
	}
	return Null, fmt.Errorf("sql: cannot evaluate %T", e)
}

func (c *evalCtx) evalBinary(x *BinaryExpr) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := c.eval(x.Left)
		if err != nil {
			return Null, err
		}
		if lb, known := l.AsBool(); known && !lb {
			return Bool(false), nil // short circuit
		}
		r, err := c.eval(x.Right)
		if err != nil {
			return Null, err
		}
		rb, rknown := r.AsBool()
		if rknown && !rb {
			return Bool(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(true), nil

	case "OR":
		l, err := c.eval(x.Left)
		if err != nil {
			return Null, err
		}
		if lb, known := l.AsBool(); known && lb {
			return Bool(true), nil // short circuit
		}
		r, err := c.eval(x.Right)
		if err != nil {
			return Null, err
		}
		if rb, rknown := r.AsBool(); rknown && rb {
			return Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return Bool(false), nil
	}

	l, err := c.eval(x.Left)
	if err != nil {
		return Null, err
	}
	r, err := c.eval(x.Right)
	if err != nil {
		return Null, err
	}
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}

	switch x.Op {
	case "=":
		return Bool(Compare(l, r) == 0), nil
	case "<>":
		return Bool(Compare(l, r) != 0), nil
	case "<":
		return Bool(Compare(l, r) < 0), nil
	case "<=":
		return Bool(Compare(l, r) <= 0), nil
	case ">":
		return Bool(Compare(l, r) > 0), nil
	case ">=":
		return Bool(Compare(l, r) >= 0), nil
	case "LIKE":
		return Bool(likeMatch(l.AsString(), r.AsString())), nil
	case "||":
		return Str(l.AsString() + r.AsString()), nil
	case "+", "-", "*", "/":
		return arith(x.Op, l, r)
	}
	return Null, fmt.Errorf("sql: unknown operator %s", x.Op)
}

func arith(op string, l, r Value) (Value, error) {
	if l.Kind() == KindFloat || r.Kind() == KindFloat {
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			return Null, fmt.Errorf("sql: non-numeric operand for %s", op)
		}
		switch op {
		case "+":
			return Float(lf + rf), nil
		case "-":
			return Float(lf - rf), nil
		case "*":
			return Float(lf * rf), nil
		case "/":
			if rf == 0 {
				return Null, fmt.Errorf("sql: division by zero")
			}
			return Float(lf / rf), nil
		}
	}
	li, lok := l.AsInt()
	ri, rok := r.AsInt()
	if !lok || !rok {
		return Null, fmt.Errorf("sql: non-numeric operand for %s", op)
	}
	switch op {
	case "+":
		return Int(li + ri), nil
	case "-":
		return Int(li - ri), nil
	case "*":
		return Int(li * ri), nil
	case "/":
		if ri == 0 {
			return Null, fmt.Errorf("sql: division by zero")
		}
		return Int(li / ri), nil
	}
	return Null, fmt.Errorf("sql: unknown arithmetic operator %s", op)
}

func (c *evalCtx) evalIn(x *InExpr) (Value, error) {
	v, err := c.eval(x.Operand)
	if err != nil {
		return Null, err
	}
	if v.IsNull() {
		return Null, nil
	}
	sawNull := false
	check := func(item Value) (bool, bool) { // (matched, null)
		if item.IsNull() {
			return false, true
		}
		return Compare(v, item) == 0, false
	}
	if x.Subquery != nil {
		rows, err := c.db.execSelect(x.Subquery, c.env, c.params, 0, c.st)
		if err != nil {
			return Null, err
		}
		for _, row := range rows.Data {
			if len(row) != 1 {
				return Null, fmt.Errorf("sql: IN subquery must return one column")
			}
			m, isNull := check(row[0])
			if isNull {
				sawNull = true
			} else if m {
				return Bool(!x.Negated), nil
			}
		}
	} else {
		for _, item := range x.List {
			iv, err := c.eval(item)
			if err != nil {
				return Null, err
			}
			m, isNull := check(iv)
			if isNull {
				sawNull = true
			} else if m {
				return Bool(!x.Negated), nil
			}
		}
	}
	if sawNull {
		return Null, nil
	}
	return Bool(x.Negated), nil
}

func (c *evalCtx) evalScalarFunc(x *FuncExpr) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := c.eval(a)
		if err != nil {
			return Null, err
		}
		args[i] = v
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sql: %s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "UPPER":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Str(strings.ToUpper(args[0].AsString())), nil
	case "LOWER":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Str(strings.ToLower(args[0].AsString())), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		return Int(int64(len(args[0].AsString()))), nil
	case "ABS":
		if err := need(1); err != nil {
			return Null, err
		}
		if args[0].IsNull() {
			return Null, nil
		}
		if args[0].Kind() == KindFloat {
			f, _ := args[0].AsFloat()
			if f < 0 {
				f = -f
			}
			return Float(f), nil
		}
		n, ok := args[0].AsInt()
		if !ok {
			return Null, fmt.Errorf("sql: ABS of non-numeric value")
		}
		if n < 0 {
			n = -n
		}
		return Int(n), nil
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return Null, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return Null, fmt.Errorf("sql: %s expects 2 or 3 arguments", x.Name)
		}
		if args[0].IsNull() {
			return Null, nil
		}
		s := args[0].AsString()
		start, _ := args[1].AsInt()
		if start < 1 {
			start = 1
		}
		if int(start) > len(s) {
			return Str(""), nil
		}
		rest := s[start-1:]
		if len(args) == 3 {
			n, _ := args[2].AsInt()
			if n < 0 {
				n = 0
			}
			if int(n) < len(rest) {
				rest = rest[:n]
			}
		}
		return Str(rest), nil
	}
	return Null, fmt.Errorf("sql: unknown function %s", x.Name)
}

// likeMatch implements SQL LIKE with '%' (any run), '_' (any one byte),
// and '\' escaping the next pattern byte (the common LIKE ... ESCAPE '\'
// extension, always enabled). Escaping lets URI patterns containing
// literal '_' or '%' be stored safely by the reference-file subsystem.
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	si, pi := 0, 0
	star, match := -1, 0
	literalAt := func(pi int) (byte, int, bool) {
		// Returns the literal byte at pattern position pi (resolving a
		// backslash escape), the width consumed, and whether the byte
		// is literal (as opposed to a % or _ metacharacter).
		c := pattern[pi]
		switch c {
		case '\\':
			if pi+1 < len(pattern) {
				return pattern[pi+1], 2, true
			}
			return '\\', 1, true
		case '%', '_':
			return c, 1, false
		default:
			return c, 1, true
		}
	}
	for si < len(s) {
		if pi < len(pattern) {
			c, w, lit := literalAt(pi)
			switch {
			case !lit && c == '_':
				si++
				pi += w
				continue
			case !lit && c == '%':
				star = pi
				match = si
				pi += w
				continue
			case lit && c == s[si]:
				si++
				pi += w
				continue
			}
		}
		if star >= 0 {
			// Backtrack: let the last '%' absorb one more byte.
			pi = star + 1
			match++
			si = match
			continue
		}
		return false
	}
	for pi < len(pattern) {
		c, w, lit := literalAt(pi)
		if lit || c != '%' {
			return false
		}
		pi += w
	}
	return true
}

// EscapeLike escapes LIKE metacharacters in a literal string so it matches
// itself exactly within a pattern.
func EscapeLike(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '%', '_', '\\':
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// truthy interprets an evaluated predicate for WHERE/HAVING: NULL is false.
func truthy(v Value) bool {
	b, known := v.AsBool()
	return known && b
}
