// Package reldb is an embedded, in-memory relational database engine with a
// SQL subset sufficient to execute the queries that the P3P server-centric
// architecture generates: CREATE TABLE / CREATE INDEX / INSERT / UPDATE /
// DELETE / SELECT with correlated EXISTS subqueries, AND/OR/NOT, IN, LIKE,
// IS NULL, derived tables, aggregates, GROUP BY and ORDER BY.
//
// It stands in for the DB2 UDB 7.2 instance used in the paper's experiments
// (see DESIGN.md, substitution table): the experiments exercise the shape of
// the generated queries — index nested-loop joins driven by equality
// predicates and nested EXISTS — which this engine executes with the same
// plan structure.
package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types a Value can hold.
type Kind uint8

// Value kinds. KindNull is the zero value so that the zero Value is NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String names the kind as its SQL type.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null is the SQL NULL value.
var Null = Value{}

// Int returns an INTEGER value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a DOUBLE value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// Str returns a VARCHAR value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a BOOLEAN value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the value as int64. Floats are truncated; strings are
// parsed. The second result is false if the conversion is impossible.
func (v Value) AsInt() (int64, bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	case KindString:
		n, err := strconv.ParseInt(strings.TrimSpace(v.s), 10, 64)
		return n, err == nil
	}
	return 0, false
}

// AsFloat returns the value as float64 where possible.
func (v Value) AsFloat() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(v.s), 64)
		return f, err == nil
	}
	return 0, false
}

// AsString renders the value as a string. NULL renders as the empty string.
func (v Value) AsString() string {
	switch v.kind {
	case KindNull:
		return ""
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	}
	return ""
}

// AsBool returns the value's truth per SQL three-valued logic flattened to
// (value, known): NULL yields known=false.
func (v Value) AsBool() (bool, bool) {
	switch v.kind {
	case KindBool:
		return v.b, true
	case KindInt:
		return v.i != 0, true
	case KindFloat:
		return v.f != 0, true
	case KindString:
		return v.s != "", true
	}
	return false, false
}

// String implements fmt.Stringer; NULL prints as "NULL" and strings are
// quoted, for debugging and table dumps.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	default:
		return v.AsString()
	}
}

// Compare orders two non-NULL values. Numeric kinds compare numerically
// (with int/float coercion); strings compare lexicographically; bools order
// false < true. Comparing incompatible kinds (e.g. string vs int where the
// string is not numeric) falls back to string comparison, which matches the
// loose typing DB2-era CLI tools exhibited for our generated queries (all of
// which are type-consistent anyway). Compare must not be called with NULLs;
// use Equal/compareWithNull helpers in eval instead.
func Compare(a, b Value) int {
	if a.kind == KindNull || b.kind == KindNull {
		panic("reldb: Compare called with NULL")
	}
	if isNumeric(a.kind) && isNumeric(b.kind) {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case !a.b && b.b:
			return -1
		case a.b && !b.b:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a.AsString(), b.AsString())
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// encodeKey produces a canonical byte encoding of a tuple of values for use
// as a hash-index key. The encoding is injective for tuples of the same
// arity: each component is prefixed by its kind tag and terminated by a 0
// byte, with 0 bytes in strings escaped.
func encodeKey(vals []Value) string {
	var scratch [64]byte
	b := scratch[:0]
	for _, v := range vals {
		b = appendKeyValue(b, v)
	}
	return string(b)
}

// appendKeyValue appends one value's key encoding to b. Factored out so
// the insert hot path can encode keys straight from a row's indexed
// ordinals without gathering them into a temporary slice first.
func appendKeyValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind)+'0')
	switch v.kind {
	case KindInt:
		b = strconv.AppendInt(b, v.i, 10)
	case KindFloat:
		b = strconv.AppendFloat(b, v.f, 'g', -1, 64)
	case KindString:
		for i := 0; i < len(v.s); i++ {
			c := v.s[i]
			if c == 0 || c == 1 {
				b = append(b, 1)
			}
			b = append(b, c)
		}
	case KindBool:
		if v.b {
			b = append(b, 't')
		} else {
			b = append(b, 'f')
		}
	}
	return append(b, 0)
}
