package reldb

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/resource"
)

// Process-wide observability counters (obs registry, DESIGN.md §8).
// They aggregate across every DB in the process — per-instance numbers
// stay available via DB.Stats — and are resolved once here so the hot
// path only ever touches atomics.
var (
	obsStatements   = obs.GetCounter("reldb.statements")
	obsRowsScanned  = obs.GetCounter("reldb.rows_scanned")
	obsIndexLookups = obs.GetCounter("reldb.index_lookups")
	obsViewHits     = obs.GetCounter("reldb.viewcache.hits")
	obsViewMisses   = obs.GetCounter("reldb.viewcache.misses")
	obsIndexBuilds  = obs.GetCounter("reldb.derivedindex.builds")
)

// Typed resource-governance errors, re-exported so reldb callers can
// errors.Is against the package they already import. ErrBudgetExceeded
// reports a statement that visited more rows than its step budget
// allows; ErrCanceled reports a context that ended mid-statement (the
// returned error also wraps the context's cause, so deadline expiry is
// distinguishable from explicit cancellation).
var (
	ErrBudgetExceeded = resource.ErrBudgetExceeded
	ErrCanceled       = resource.ErrCanceled
)

// ErrFrozen reports a write attempted against a frozen database. Site
// snapshots freeze their databases at publication; all policy writes go
// through a successor snapshot instead.
var ErrFrozen = errors.New("reldb: database is frozen")

// Options configure a DB instance.
type Options struct {
	// DisableIndexes forces full scans even where an index would apply.
	// Used by the ablation benchmarks.
	DisableIndexes bool
	// MaxSubqueryDepth bounds subquery nesting; statements beyond it are
	// rejected with ErrTooComplex. Zero means the engine default.
	MaxSubqueryDepth int
	// MaxSubqueries bounds the total number of query blocks per
	// statement. Zero means the engine default.
	MaxSubqueries int
	// DisableViewCache turns off the materialized-view cache for bare
	// "(SELECT * FROM t)" derived tables. Used by the ablation
	// benchmarks to isolate the cost of the XML-view reconstruction
	// layer.
	DisableViewCache bool
	// MaxQuerySteps bounds the work one statement may perform, counted
	// in rows visited (by scans, index probes, and subquery
	// re-evaluations). A statement that exceeds it aborts with
	// ErrBudgetExceeded. Zero means unlimited. Callers that install a
	// resource.Meter in the context govern the whole call themselves and
	// override this per-statement budget.
	MaxQuerySteps int64
}

// Stats counts engine work, for tests and ablation benchmarks.
type Stats struct {
	RowsScanned  int64 // rows visited by full scans
	IndexLookups int64 // hash-index probes
	Statements   int64 // statements executed
}

// dbStats is the engine's live counter set. Counters are atomic so the
// read path — which runs under a shared lock, many statements at once —
// can increment them without write-lock serialization.
type dbStats struct {
	rowsScanned  atomic.Int64
	indexLookups atomic.Int64
	statements   atomic.Int64
}

// DB is an in-memory relational database. All methods are safe for
// concurrent use: SELECTs run under a shared lock and proceed in
// parallel; DDL and DML take the exclusive lock.
type DB struct {
	mu         sync.RWMutex
	tables     map[string]*Table
	opts       Options
	maxDepth   int
	maxSelects int
	stats      dbStats
	// frozen marks the database immutable. Site snapshots freeze their
	// databases once fully populated: from then on SELECTs skip the
	// shared lock entirely — even an uncontended RWMutex.RLock is an
	// atomic read-modify-write on one shared word, which is the cache
	// line every core fights over when matching scales out — and writes
	// fail with ErrFrozen instead of mutating published state.
	frozen atomic.Bool
	// viewMu serializes view-cache fills and invalidations. Readers
	// never take it: they load the viewCache pointer. The first reader
	// to need a missing or stale view materializes it under viewMu and
	// publishes a copied map; the rest reuse. Lock order is always mu
	// before viewMu.
	viewMu sync.Mutex
	// viewCache holds materializations (and hash indexes) of bare
	// "(SELECT * FROM t)" derived tables, keyed by table name and
	// invalidated by the table's version counter. The XML-view
	// reconstruction layer of the XTABLE path re-derives the same views
	// in every statement; this is the engine's materialized-view cache.
	// The map behind the pointer is immutable — fills copy-on-write —
	// so lookups are one atomic load, shared-lock-free.
	viewCache atomic.Pointer[map[string]*viewSnapshot]
}

// viewSnapshot is one cached bare-view materialization. version and rows
// are written once, before the snapshot is published; the lazily built
// hash indexes over the rows are published through an atomic pointer so
// concurrent SELECTs probe them without locking.
type viewSnapshot struct {
	version int64
	rows    [][]Value
	// idxMu serializes index builds only; readers load the indexes
	// pointer and never block.
	idxMu   sync.Mutex
	indexes atomic.Pointer[map[string]map[string][]int] // colset key -> value key -> row ids
}

// index returns the snapshot's hash index for the given column set,
// building it (once) under idxMu and publishing it copy-on-write.
func (vs *viewSnapshot) index(colsetKey string, ords []int) map[string][]int {
	if buckets := (*vs.indexes.Load())[colsetKey]; buckets != nil {
		return buckets
	}
	vs.idxMu.Lock()
	defer vs.idxMu.Unlock()
	cur := *vs.indexes.Load()
	if buckets := cur[colsetKey]; buckets != nil {
		return buckets
	}
	buckets := buildDerivedIndex(vs.rows, ords)
	next := make(map[string]map[string][]int, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[colsetKey] = buckets
	vs.indexes.Store(&next)
	return buckets
}

func newViewSnapshot(version int64, rows [][]Value) *viewSnapshot {
	vs := &viewSnapshot{version: version, rows: rows}
	vs.indexes.Store(&map[string]map[string][]int{})
	return vs
}

// New returns an empty database with default options.
func New() *DB { return NewWithOptions(Options{}) }

// NewWithOptions returns an empty database with the given options.
func NewWithOptions(opts Options) *DB {
	d := &DB{
		tables:     map[string]*Table{},
		opts:       opts,
		maxDepth:   opts.MaxSubqueryDepth,
		maxSelects: opts.MaxSubqueries,
	}
	d.viewCache.Store(&map[string]*viewSnapshot{})
	if d.maxDepth == 0 {
		d.maxDepth = defaultMaxSubqueryDepth
	}
	if d.maxSelects == 0 {
		d.maxSelects = defaultMaxSubqueries
	}
	return d
}

// Rows is a fully materialized query result.
type Rows struct {
	Columns []string
	Data    [][]Value
}

// Freeze marks the database immutable. Reads from a frozen database
// skip the shared lock — matching against a published site snapshot
// takes no lock at all — and writes fail with ErrFrozen. Freezing is
// one-way; the caller must not mutate tables after calling it.
func (db *DB) Freeze() { db.frozen.Store(true) }

// Frozen reports whether the database has been frozen.
func (db *DB) Frozen() bool { return db.frozen.Load() }

// Stats returns a snapshot of the engine's work counters. The counters
// are atomic, so this is safe to call while statements run concurrently.
func (db *DB) Stats() Stats {
	return Stats{
		RowsScanned:  db.stats.rowsScanned.Load(),
		IndexLookups: db.stats.indexLookups.Load(),
		Statements:   db.stats.statements.Load(),
	}
}

// ResetStats zeroes the work counters.
func (db *DB) ResetStats() {
	db.stats.rowsScanned.Store(0)
	db.stats.indexLookups.Store(0)
	db.stats.statements.Store(0)
}

// Table returns the named table, for introspection, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// TableNames returns the sorted names of all tables.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var names []string
	for _, t := range db.tables {
		names = append(names, t.schema.Name)
	}
	sort.Strings(names)
	return names
}

// HasTable reports whether the named table exists.
func (db *DB) HasTable(name string) bool { return db.Table(name) != nil }

// meterFor resolves the resource meter governing one statement: a meter
// installed in the context (callers metering a whole multi-statement
// operation) wins; otherwise a fresh per-statement meter is built from
// the context and the engine's configured step budget. Nil when there is
// nothing to govern, which keeps the ungoverned path free.
func (db *DB) meterFor(ctx context.Context) *resource.Meter {
	if m := resource.FromContext(ctx); m != nil {
		return m
	}
	return resource.NewMeter(ctx, db.opts.MaxQuerySteps)
}

// Exec parses and executes a statement that returns no rows (DDL or DML)
// and reports the number of rows affected.
func (db *DB) Exec(sql string, params ...Value) (int, error) {
	return db.ExecCtx(context.Background(), sql, params...)
}

// InsertRows bulk-appends pre-ordered rows to the named table, bypassing
// SQL parsing and expression evaluation entirely. Each row must carry one
// value per schema column in schema order; validation and index
// maintenance match INSERT exactly. Rows whose values already have their
// column's exact kind are stored without copying — the table aliases the
// slice, so callers must treat submitted rows as immutable from then on
// (cached shred fragments are; that is what lets one fragment feed every
// rebuilt snapshot). Returns the number of rows inserted before any
// error.
func (db *DB) InsertRows(table string, rows [][]Value) (int, error) {
	if db.frozen.Load() {
		return 0, ErrFrozen
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[strings.ToLower(table)]
	if !ok {
		return 0, fmt.Errorf("sql: table %s does not exist", table)
	}
	db.stats.statements.Add(1)
	obsStatements.Inc()
	t.rows = slices.Grow(t.rows, len(rows))
	n := 0
	for _, row := range rows {
		if err := t.insertShared(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// ExecCtx is Exec governed by a context: cancellation and the engine's
// step budget abort DML row scans with a typed error.
func (db *DB) ExecCtx(ctx context.Context, sql string, params ...Value) (int, error) {
	stmt, err := parseWithLimit(sql, db.maxDepth, db.maxSelects)
	if err != nil {
		return 0, err
	}
	return db.ExecStmtCtx(ctx, stmt, params...)
}

// ExecStmt executes an already-parsed statement.
func (db *DB) ExecStmt(stmt Statement, params ...Value) (int, error) {
	return db.ExecStmtCtx(context.Background(), stmt, params...)
}

// ExecStmtCtx is ExecStmt governed by a context.
func (db *DB) ExecStmtCtx(ctx context.Context, stmt Statement, params ...Value) (int, error) {
	if err := faultkit.Inject(faultkit.PointRelDBQuery); err != nil {
		return 0, err
	}
	if db.frozen.Load() {
		return 0, ErrFrozen
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.stats.statements.Add(1)
	obsStatements.Inc()
	st := newExecState(db.meterFor(ctx))
	defer db.finish(st)
	switch s := stmt.(type) {
	case *CreateTableStmt:
		return 0, db.createTable(s)
	case *CreateIndexStmt:
		return 0, db.createIndex(s)
	case *DropTableStmt:
		key := strings.ToLower(s.Table)
		if _, ok := db.tables[key]; !ok {
			return 0, fmt.Errorf("sql: table %s does not exist", s.Table)
		}
		delete(db.tables, key)
		// A later table with the same name restarts its version counter,
		// so a stale snapshot could alias it; drop the cache entry
		// (copy-on-write, so in-flight readers keep a coherent map).
		db.viewMu.Lock()
		cur := *db.viewCache.Load()
		if _, cached := cur[key]; cached {
			next := make(map[string]*viewSnapshot, len(cur))
			for k, v := range cur {
				if k != key {
					next[k] = v
				}
			}
			db.viewCache.Store(&next)
		}
		db.viewMu.Unlock()
		return 0, nil
	case *InsertStmt:
		return db.execInsert(s, params, st)
	case *UpdateStmt:
		return db.execUpdate(s, params, st)
	case *DeleteStmt:
		return db.execDelete(s, params, st)
	case *SelectStmt:
		rows, err := db.execSelect(s, nil, params, 0, st)
		if err != nil {
			return 0, err
		}
		return len(rows.Data), nil
	}
	return 0, fmt.Errorf("sql: cannot execute %T", stmt)
}

// Query parses and executes a SELECT and returns its rows.
func (db *DB) Query(sql string, params ...Value) (*Rows, error) {
	return db.QueryCtx(context.Background(), sql, params...)
}

// QueryCtx is Query governed by a context: cancellation (checked
// periodically by the row evaluator) and the engine's step budget abort
// execution with ErrCanceled / ErrBudgetExceeded.
func (db *DB) QueryCtx(ctx context.Context, sql string, params ...Value) (*Rows, error) {
	stmt, err := parseWithLimit(sql, db.maxDepth, db.maxSelects)
	if err != nil {
		return nil, err
	}
	return db.QueryStmtCtx(ctx, stmt, params...)
}

// QueryStmt executes an already-parsed SELECT statement. Reusing a parsed
// statement skips SQL parsing, which is what the conversion-cache ablation
// benchmark measures. SELECTs take only the shared lock, so any number of
// them run in parallel.
func (db *DB) QueryStmt(stmt Statement, params ...Value) (*Rows, error) {
	return db.QueryStmtCtx(context.Background(), stmt, params...)
}

// QueryStmtCtx is QueryStmt governed by a context.
func (db *DB) QueryStmtCtx(ctx context.Context, stmt Statement, params ...Value) (*Rows, error) {
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: Query requires a SELECT, got %T", stmt)
	}
	if err := faultkit.Inject(faultkit.PointRelDBQuery); err != nil {
		return nil, err
	}
	// A frozen database cannot mutate, so the shared lock buys nothing
	// and its cache-line traffic is exactly what multi-core matching
	// must not pay.
	if !db.frozen.Load() {
		db.mu.RLock()
		defer db.mu.RUnlock()
	}
	db.stats.statements.Add(1)
	obsStatements.Inc()
	st := newExecState(db.meterFor(ctx))
	defer db.finish(st)
	return db.execSelect(sel, nil, params, 0, st)
}

// QueryExists executes a SELECT and reports whether it produced any row,
// stopping at the first. This is the primitive preference matching uses.
func (db *DB) QueryExists(sql string, params ...Value) (bool, error) {
	return db.QueryExistsCtx(context.Background(), sql, params...)
}

// QueryExistsCtx is QueryExists governed by a context.
func (db *DB) QueryExistsCtx(ctx context.Context, sql string, params ...Value) (bool, error) {
	stmt, err := parseWithLimit(sql, db.maxDepth, db.maxSelects)
	if err != nil {
		return false, err
	}
	return db.QueryExistsStmtCtx(ctx, stmt, params...)
}

// Prepare parses a statement under the engine's complexity limits without
// executing it, like a database PREPARE. Statements beyond the limits fail
// here with ErrTooComplex.
func (db *DB) Prepare(sql string) (Statement, error) {
	return parseWithLimit(sql, db.maxDepth, db.maxSelects)
}

// QueryExistsStmt is QueryExists over an already-prepared statement.
func (db *DB) QueryExistsStmt(stmt Statement, params ...Value) (bool, error) {
	return db.QueryExistsStmtCtx(context.Background(), stmt, params...)
}

// QueryExistsStmtCtx is QueryExistsStmt governed by a context. This is
// the primitive the matching hot path calls once per preference rule; a
// meter installed in the context spans all of a match's statements.
func (db *DB) QueryExistsStmtCtx(ctx context.Context, stmt Statement, params ...Value) (bool, error) {
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return false, fmt.Errorf("sql: QueryExistsStmt requires a SELECT, got %T", stmt)
	}
	if err := faultkit.Inject(faultkit.PointRelDBQuery); err != nil {
		return false, err
	}
	if !db.frozen.Load() {
		db.mu.RLock()
		defer db.mu.RUnlock()
	}
	db.stats.statements.Add(1)
	obsStatements.Inc()
	st := newExecState(db.meterFor(ctx))
	defer db.finish(st)
	rows, err := db.execSelect(sel, nil, params, 1, st)
	if err != nil {
		return false, err
	}
	return len(rows.Data) > 0, nil
}

// MustExec is Exec that panics on error; intended for tests and fixtures.
func (db *DB) MustExec(sql string, params ...Value) {
	if _, err := db.Exec(sql, params...); err != nil {
		panic(err)
	}
}

func (db *DB) createTable(s *CreateTableStmt) error {
	key := strings.ToLower(s.Table)
	if _, dup := db.tables[key]; dup {
		return fmt.Errorf("sql: table %s already exists", s.Table)
	}
	schema, err := NewTableSchema(s.Table, s.Columns, s.PrimaryKey)
	if err != nil {
		return err
	}
	db.tables[key] = newTable(schema)
	return nil
}

func (db *DB) createIndex(s *CreateIndexStmt) error {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return fmt.Errorf("sql: table %s does not exist", s.Table)
	}
	return t.addIndex(s.Name, s.Columns, s.Unique)
}

func (db *DB) execInsert(s *InsertStmt, params []Value, st *execState) (int, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("sql: table %s does not exist", s.Table)
	}
	cols := s.Columns
	if len(cols) == 0 {
		cols = make([]string, len(t.schema.Columns))
		for i, c := range t.schema.Columns {
			cols[i] = c.Name
		}
	}
	ords, err := t.schema.ordinals(cols)
	if err != nil {
		return 0, err
	}
	ctx := &evalCtx{db: db, env: &env{}, params: params, st: st}
	n := 0
	for _, exprRow := range s.Rows {
		if len(exprRow) != len(ords) {
			return n, fmt.Errorf("sql: INSERT has %d values for %d columns", len(exprRow), len(ords))
		}
		row := make([]Value, len(t.schema.Columns))
		for i, e := range exprRow {
			v, err := ctx.eval(e)
			if err != nil {
				return n, err
			}
			row[ords[i]] = v
		}
		if err := t.insert(row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (db *DB) execUpdate(s *UpdateStmt, params []Value, st *execState) (int, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("sql: table %s does not exist", s.Table)
	}
	cols := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		cols[i] = strings.ToLower(c.Name)
	}
	b := &binding{name: strings.ToLower(t.schema.Name), cols: cols}
	scope := &env{bindings: []*binding{b}}
	ctx := &evalCtx{db: db, env: scope, params: params, st: st}
	setOrds := make([]int, len(s.Set))
	for i, sc := range s.Set {
		ord := t.schema.ColumnIndex(sc.Column)
		if ord < 0 {
			return 0, fmt.Errorf("sql: table %s has no column %s", s.Table, sc.Column)
		}
		setOrds[i] = ord
	}
	// Collect matching ids first, then mutate, so the scan is stable.
	var ids [][]Value
	var idNums []int
	var scanErr error
	t.scan(func(id int, row []Value) bool {
		st.rows++
		if err := st.step(1); err != nil {
			scanErr = err
			return false
		}
		b.row = row
		if s.Where != nil {
			v, err := ctx.eval(s.Where)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		idNums = append(idNums, id)
		ids = append(ids, row)
		return true
	})
	if scanErr != nil {
		return 0, scanErr
	}
	for i, id := range idNums {
		b.row = ids[i]
		newRow := append([]Value(nil), ids[i]...)
		for j, sc := range s.Set {
			v, err := ctx.eval(sc.Value)
			if err != nil {
				return i, err
			}
			newRow[setOrds[j]] = v
		}
		if err := t.update(id, newRow); err != nil {
			return i, err
		}
	}
	return len(idNums), nil
}

func (db *DB) execDelete(s *DeleteStmt, params []Value, st *execState) (int, error) {
	t, ok := db.tables[strings.ToLower(s.Table)]
	if !ok {
		return 0, fmt.Errorf("sql: table %s does not exist", s.Table)
	}
	cols := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		cols[i] = strings.ToLower(c.Name)
	}
	b := &binding{name: strings.ToLower(t.schema.Name), cols: cols}
	ctx := &evalCtx{db: db, env: &env{bindings: []*binding{b}}, params: params, st: st}
	var ids []int
	var scanErr error
	t.scan(func(id int, row []Value) bool {
		st.rows++
		if err := st.step(1); err != nil {
			scanErr = err
			return false
		}
		b.row = row
		if s.Where != nil {
			v, err := ctx.eval(s.Where)
			if err != nil {
				scanErr = err
				return false
			}
			if !truthy(v) {
				return true
			}
		}
		ids = append(ids, id)
		return true
	})
	if scanErr != nil {
		return 0, scanErr
	}
	for _, id := range ids {
		t.delete(id)
	}
	return len(ids), nil
}

// errEnough unwinds join recursion once the caller's row quota is met.
var errEnough = errors.New("enough rows")

// execState carries per-statement execution caches. The derived map
// memoizes materializations of cacheable derived tables — the
// "(SELECT * FROM t)" view-reconstruction wrappers the XTABLE path
// generates — so each view is materialized once per statement instead of
// once per correlated subquery evaluation.
type execState struct {
	derived map[*SelectStmt]*Rows
	// derivedIdx memoizes hash indexes built over cached derived tables,
	// keyed by the derived statement and the indexed column set. They
	// make equality joins against materialized views hash probes instead
	// of repeated scans.
	derivedIdx map[*SelectStmt]map[string]map[string][]int
	// meter is the statement's resource governor: the row evaluator
	// charges it one step per row visited (and one per query block
	// entered), aborting with ErrBudgetExceeded / ErrCanceled. Nil means
	// ungoverned; charging a nil meter is a no-op.
	meter *resource.Meter
	// rows and idxLookups accumulate this statement's work locally (the
	// statement runs on one goroutine) and are flushed to the DB's
	// atomic stats and the obs registry once, at statement end — one
	// atomic add per statement instead of one per row.
	rows       int64
	idxLookups int64
}

// finish flushes a statement's locally accumulated work counters to the
// DB's stats and the process-wide obs registry, then returns the state
// to the pool. Deferred by every statement entry point; the statement
// must not retain the state past this call.
func (db *DB) finish(st *execState) {
	if st.rows > 0 {
		db.stats.rowsScanned.Add(st.rows)
		obsRowsScanned.Add(st.rows)
	}
	if st.idxLookups > 0 {
		db.stats.indexLookups.Add(st.idxLookups)
		obsIndexLookups.Add(st.idxLookups)
	}
	clear(st.derived)
	clear(st.derivedIdx)
	st.meter = nil
	st.rows, st.idxLookups = 0, 0
	execStatePool.Put(st)
}

// step charges n units of row-evaluator work against the statement's
// meter.
func (st *execState) step(n int64) error { return st.meter.Step(n) }

// cacheableDerived reports whether a derived table can be memoized for
// the whole statement: a bare projection of one base table with no
// filtering, which cannot be correlated to any outer binding.
func cacheableDerived(sel *SelectStmt) bool {
	return sel.Star && len(sel.From) == 1 && sel.From[0].Table != "" &&
		sel.Where == nil && len(sel.GroupBy) == 0 && sel.Having == nil &&
		len(sel.OrderBy) == 0 && sel.Limit < 0 && !sel.Distinct
}

// fromSource is a bound FROM item: either a base table (with index access)
// or a materialized derived table.
type fromSource struct {
	binding *binding
	table   *Table    // nil for derived tables
	rows    [][]Value // materialized rows for derived tables
	// derivedStmt is set when rows came from the statement-level derived
	// cache, enabling memoized hash indexes over them.
	derivedStmt *SelectStmt
	// view is set when rows came from the DB-level bare-view cache; its
	// hash indexes are shared across statements.
	view *viewSnapshot
}

// bareViewSnapshot serves "(SELECT * FROM t)" from the materialized-view
// cache, refreshing it when the table has changed. The caller must hold
// db.mu (shared or exclusive) or the database must be frozen; the table
// therefore cannot mutate while the snapshot is built. The hit path is
// one atomic load and a map lookup — no lock — so the XTABLE engine's
// per-rule view probes never serialize readers. Concurrent readers that
// find the cache stale serialize on viewMu: the first materializes and
// publishes a copied map, the rest reuse.
func (db *DB) bareViewSnapshot(sel *SelectStmt) (*viewSnapshot, []string, bool) {
	if db.opts.DisableViewCache || !cacheableDerived(sel) {
		return nil, nil, false
	}
	t, ok := db.tables[strings.ToLower(sel.From[0].Table)]
	if !ok {
		return nil, nil, false
	}
	cols := make([]string, len(t.schema.Columns))
	for i, c := range t.schema.Columns {
		cols[i] = strings.ToLower(c.Name)
	}
	key := strings.ToLower(t.schema.Name)
	if snap := (*db.viewCache.Load())[key]; snap != nil && snap.version == t.version {
		obsViewHits.Inc()
		return snap, cols, true
	}
	db.viewMu.Lock()
	defer db.viewMu.Unlock()
	cur := *db.viewCache.Load()
	snap := cur[key]
	if snap == nil || snap.version != t.version {
		obsViewMisses.Inc()
		rows := make([][]Value, 0, t.live)
		t.scan(func(_ int, row []Value) bool {
			rows = append(rows, row)
			return true
		})
		snap = newViewSnapshot(t.version, rows)
		next := make(map[string]*viewSnapshot, len(cur)+1)
		for k, v := range cur {
			next[k] = v
		}
		next[key] = snap
		db.viewCache.Store(&next)
	} else {
		obsViewHits.Inc()
	}
	return snap, cols, true
}

// execStatePool recycles per-statement state. The matching hot path runs
// one statement per preference rule; without the pool each statement
// allocates a fresh execState (and, for XTABLE, its derived-cache maps),
// which at scale-out turns into allocator and GC pressure shared across
// every worker.
var execStatePool = sync.Pool{New: func() any { return new(execState) }}

func newExecState(m *resource.Meter) *execState {
	st := execStatePool.Get().(*execState)
	st.meter = m
	return st
}

// execSelect runs a SELECT. outer is the enclosing scope for correlated
// subqueries (nil at top level). needRows > 0 allows stopping early once
// that many output rows exist (only when no ordering/grouping/distinct
// would be violated). The caller must hold db.mu, shared or exclusive:
// execution never mutates table state, and its two caches (the DB-level
// view cache and the per-snapshot derived indexes) synchronize themselves.
func (db *DB) execSelect(sel *SelectStmt, outer *env, params []Value, needRows int, st *execState) (*Rows, error) {
	// Each query block entered charges one step, so deeply nested
	// subqueries consume budget even over empty tables, and the
	// periodic context poll happens at least once per block.
	if err := st.step(1); err != nil {
		return nil, err
	}
	// Bind FROM items.
	sources := make([]*fromSource, len(sel.From))
	scope := &env{parent: outer}
	for i, fi := range sel.From {
		src := &fromSource{}
		name := strings.ToLower(fi.Name())
		if fi.Subquery != nil {
			if snap, cols, ok := db.bareViewSnapshot(fi.Subquery); ok {
				src.binding = &binding{name: name, cols: cols}
				src.rows = snap.rows
				src.view = snap
				sources[i] = src
				scope.bindings = append(scope.bindings, src.binding)
				continue
			}
			var sub *Rows
			if cacheableDerived(fi.Subquery) {
				if cached, ok := st.derived[fi.Subquery]; ok {
					sub = cached
				}
			}
			if sub == nil {
				var err error
				sub, err = db.execSelect(fi.Subquery, outer, params, 0, st)
				if err != nil {
					return nil, err
				}
				if cacheableDerived(fi.Subquery) {
					if st.derived == nil {
						st.derived = map[*SelectStmt]*Rows{}
					}
					st.derived[fi.Subquery] = sub
				}
			}
			cols := make([]string, len(sub.Columns))
			for j, c := range sub.Columns {
				cols[j] = strings.ToLower(c)
			}
			src.binding = &binding{name: name, cols: cols}
			src.rows = sub.Data
			if cacheableDerived(fi.Subquery) {
				src.derivedStmt = fi.Subquery
			}
		} else {
			t, ok := db.tables[strings.ToLower(fi.Table)]
			if !ok {
				return nil, fmt.Errorf("sql: table %s does not exist", fi.Table)
			}
			cols := make([]string, len(t.schema.Columns))
			for j, c := range t.schema.Columns {
				cols[j] = strings.ToLower(c.Name)
			}
			src.binding = &binding{name: name, cols: cols}
			src.table = t
		}
		sources[i] = src
		scope.bindings = append(scope.bindings, src.binding)
	}
	for i := range sources {
		for j := i + 1; j < len(sources); j++ {
			if sources[i].binding.name == sources[j].binding.name {
				return nil, fmt.Errorf("sql: duplicate table alias %s", sources[i].binding.name)
			}
		}
	}

	ctx := &evalCtx{db: db, env: scope, params: params, st: st}
	conjuncts := splitAnd(sel.Where)

	grouped := len(sel.GroupBy) > 0 || hasAggregate(sel.Having)
	for _, it := range sel.Items {
		if hasAggregate(it.Expr) {
			grouped = true
		}
	}
	if grouped && sel.Star {
		return nil, fmt.Errorf("sql: SELECT * cannot be combined with aggregation")
	}

	// Output column names.
	var columns []string
	if sel.Star {
		for _, src := range sources {
			columns = append(columns, src.binding.cols...)
		}
	} else {
		for i, it := range sel.Items {
			switch {
			case it.Alias != "":
				columns = append(columns, it.Alias)
			default:
				if cr, ok := it.Expr.(*ColumnRef); ok {
					columns = append(columns, strings.ToLower(cr.Column))
				} else {
					columns = append(columns, fmt.Sprintf("col%d", i+1))
				}
			}
		}
	}

	earlyExit := needRows > 0 && !grouped && !sel.Distinct && len(sel.OrderBy) == 0 && sel.Limit < 0

	var out [][]Value
	var orderKeys [][]Value
	seen := map[string]bool{} // for DISTINCT

	// groups collects per-group snapshots of all binding rows.
	type group struct {
		key       []Value
		snapshots [][][]Value // one snapshot per member row: per-binding rows
	}
	var groups []*group
	groupIdx := map[string]int{}

	emit := func() error {
		if sel.Where != nil {
			v, err := ctx.eval(sel.Where)
			if err != nil {
				return err
			}
			if !truthy(v) {
				return nil
			}
		}
		if grouped {
			keyVals := make([]Value, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				v, err := ctx.eval(g)
				if err != nil {
					return err
				}
				keyVals[i] = v
			}
			k := encodeKey(keyVals)
			gi, ok := groupIdx[k]
			if !ok {
				gi = len(groups)
				groupIdx[k] = gi
				groups = append(groups, &group{key: keyVals})
			}
			snap := make([][]Value, len(sources))
			for i, src := range sources {
				snap[i] = src.binding.row
			}
			groups[gi].snapshots = append(groups[gi].snapshots, snap)
			return nil
		}
		var row []Value
		if sel.Star {
			for _, src := range sources {
				row = append(row, src.binding.row...)
			}
		} else {
			row = make([]Value, len(sel.Items))
			for i, it := range sel.Items {
				v, err := ctx.eval(it.Expr)
				if err != nil {
					return err
				}
				row[i] = v
			}
		}
		if sel.Distinct {
			k := encodeKey(row)
			if seen[k] {
				return nil
			}
			seen[k] = true
		}
		if len(sel.OrderBy) > 0 {
			keys := make([]Value, len(sel.OrderBy))
			for i, oi := range sel.OrderBy {
				v, err := ctx.eval(oi.Expr)
				if err != nil {
					return err
				}
				keys[i] = v
			}
			orderKeys = append(orderKeys, keys)
		}
		out = append(out, row)
		if earlyExit && len(out) >= needRows {
			return errEnough
		}
		return nil
	}

	var join func(i int) error
	join = func(i int) error {
		if i == len(sources) {
			return emit()
		}
		src := sources[i]
		if src.table != nil {
			if ids, usable := db.indexCandidates(src, conjuncts, sources[:i], outer, ctx); usable {
				for _, id := range ids {
					row := src.table.rows[id]
					if row == nil {
						continue
					}
					if err := st.step(1); err != nil {
						return err
					}
					src.binding.row = row
					if err := join(i + 1); err != nil {
						return err
					}
				}
				return nil
			}
			var scanErr error
			src.table.scan(func(_ int, row []Value) bool {
				st.rows++
				if err := st.step(1); err != nil {
					scanErr = err
					return false
				}
				src.binding.row = row
				if err := join(i + 1); err != nil {
					scanErr = err
					return false
				}
				return true
			})
			return scanErr
		}
		if ids, usable := db.derivedCandidates(src, conjuncts, sources[:i], outer, ctx, st); usable {
			for _, id := range ids {
				if err := st.step(1); err != nil {
					return err
				}
				src.binding.row = src.rows[id]
				if err := join(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		for _, row := range src.rows {
			st.rows++
			if err := st.step(1); err != nil {
				return err
			}
			src.binding.row = row
			if err := join(i + 1); err != nil {
				return err
			}
		}
		return nil
	}

	if len(sources) == 0 {
		// SELECT without FROM: a single conceptual row.
		if err := emit(); err != nil && err != errEnough {
			return nil, err
		}
	} else if err := join(0); err != nil && err != errEnough {
		return nil, err
	}

	if grouped {
		// An aggregate query with no GROUP BY aggregates over everything,
		// producing one row even for empty input.
		if len(sel.GroupBy) == 0 && len(groups) == 0 {
			groups = append(groups, &group{})
		}
		for _, g := range groups {
			// Rebind a representative row (first snapshot) so that
			// GROUP BY columns evaluate normally.
			if len(g.snapshots) > 0 {
				for i, src := range sources {
					src.binding.row = g.snapshots[0][i]
				}
			} else {
				for _, src := range sources {
					src.binding.row = make([]Value, len(src.binding.cols))
				}
			}
			agg := &aggCtx{ctx: ctx, sources: sources, snapshots: g.snapshots}
			if sel.Having != nil {
				v, err := agg.eval(sel.Having)
				if err != nil {
					return nil, err
				}
				if !truthy(v) {
					continue
				}
			}
			row := make([]Value, len(sel.Items))
			for i, it := range sel.Items {
				v, err := agg.eval(it.Expr)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			if len(sel.OrderBy) > 0 {
				keys := make([]Value, len(sel.OrderBy))
				for i, oi := range sel.OrderBy {
					v, err := agg.eval(oi.Expr)
					if err != nil {
						return nil, err
					}
					keys[i] = v
				}
				orderKeys = append(orderKeys, keys)
			}
			out = append(out, row)
		}
	}

	if len(sel.OrderBy) > 0 {
		idx := make([]int, len(out))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			ka, kb := orderKeys[idx[a]], orderKeys[idx[b]]
			for i, oi := range sel.OrderBy {
				c := compareForOrder(ka[i], kb[i])
				if c == 0 {
					continue
				}
				if oi.Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		sorted := make([][]Value, len(out))
		for i, j := range idx {
			sorted[i] = out[j]
		}
		out = sorted
	}

	if sel.Limit >= 0 && len(out) > sel.Limit {
		out = out[:sel.Limit]
	}
	return &Rows{Columns: columns, Data: out}, nil
}

// compareForOrder orders values with NULLs first.
func compareForOrder(a, b Value) int {
	switch {
	case a.IsNull() && b.IsNull():
		return 0
	case a.IsNull():
		return -1
	case b.IsNull():
		return 1
	}
	return Compare(a, b)
}

// indexCandidates attempts to satisfy the binding of src via a hash-index
// probe driven by equality conjuncts whose other side is already evaluable
// (constants, parameters, earlier bindings in this scope, or outer scopes).
// It returns (rowIDs, true) on success.
func (db *DB) indexCandidates(src *fromSource, conjuncts []Expr, boundBefore []*fromSource, outer *env, ctx *evalCtx) ([]int, bool) {
	if db.opts.DisableIndexes || src.table == nil {
		return nil, false
	}
	avail := equalityConjuncts(src, conjuncts, boundBefore, outer)
	if len(avail) == 0 {
		return nil, false
	}
	ords := make([]int, 0, len(avail))
	for o := range avail {
		ords = append(ords, o)
	}
	sort.Ints(ords)
	ix := bestIndex(src.table, ords)
	if ix == nil {
		return nil, false
	}
	vals := make([]Value, len(ix.columns))
	for i, col := range ix.columns {
		v, err := ctx.eval(avail[col])
		if err != nil {
			return nil, false // fall back to scan; the error resurfaces there
		}
		if v.IsNull() {
			return []int{}, true // equality with NULL matches nothing
		}
		vals[i] = v
	}
	ctx.st.idxLookups++
	return src.table.lookup(ix, vals), true
}

// equalityConjuncts collects "src.col = <expr>" conjuncts whose right side
// is already evaluable (constants, parameters, earlier bindings, outer
// scopes), keyed by column ordinal.
func equalityConjuncts(src *fromSource, conjuncts []Expr, boundBefore []*fromSource, outer *env) map[int]Expr {
	avail := map[int]Expr{}
	for _, c := range conjuncts {
		be, ok := c.(*BinaryExpr)
		if !ok || be.Op != "=" {
			continue
		}
		for _, try := range [][2]Expr{{be.Left, be.Right}, {be.Right, be.Left}} {
			cr, ok := try[0].(*ColumnRef)
			if !ok || cr.Table == "" {
				continue
			}
			if strings.ToLower(cr.Table) != src.binding.name {
				continue
			}
			ord := src.binding.colIndex(cr.Column)
			if ord < 0 {
				continue
			}
			if !evaluableNow(try[1], boundBefore, outer) {
				continue
			}
			if _, dup := avail[ord]; !dup {
				avail[ord] = try[1]
			}
			break
		}
	}
	return avail
}

// derivedCandidates probes (building on demand) a hash index over a
// materialized derived table, turning equality joins against views into
// hash joins. Indexes over statement-cached materializations are memoized
// in the execState so each is built once per statement.
func (db *DB) derivedCandidates(src *fromSource, conjuncts []Expr, boundBefore []*fromSource, outer *env, ctx *evalCtx, st *execState) ([]int, bool) {
	if db.opts.DisableIndexes || src.table != nil || len(src.rows) < 8 {
		return nil, false
	}
	avail := equalityConjuncts(src, conjuncts, boundBefore, outer)
	if len(avail) == 0 {
		return nil, false
	}
	ords := make([]int, 0, len(avail))
	for o := range avail {
		ords = append(ords, o)
	}
	sort.Ints(ords)
	colsetKey := fmt.Sprint(ords)

	var buckets map[string][]int
	switch {
	case src.view != nil:
		// Shared across statements; the snapshot builds it under its own
		// lock so concurrent SELECTs can race the build safely.
		buckets = src.view.index(colsetKey, ords)
	case src.derivedStmt != nil:
		if st.derivedIdx == nil {
			st.derivedIdx = map[*SelectStmt]map[string]map[string][]int{}
		}
		byCols := st.derivedIdx[src.derivedStmt]
		if byCols == nil {
			byCols = map[string]map[string][]int{}
			st.derivedIdx[src.derivedStmt] = byCols
		}
		buckets = byCols[colsetKey]
		if buckets == nil {
			buckets = buildDerivedIndex(src.rows, ords)
			byCols[colsetKey] = buckets
		}
	default:
		buckets = buildDerivedIndex(src.rows, ords)
	}

	vals := make([]Value, len(ords))
	for i, ord := range ords {
		v, err := ctx.eval(avail[ord])
		if err != nil {
			return nil, false // fall back to scan; the error resurfaces there
		}
		if v.IsNull() {
			return []int{}, true
		}
		vals[i] = v
	}
	st.idxLookups++
	return buckets[encodeKey(vals)], true
}

func buildDerivedIndex(rows [][]Value, ords []int) map[string][]int {
	obsIndexBuilds.Inc()
	buckets := make(map[string][]int, len(rows))
	vals := make([]Value, len(ords))
	for id, row := range rows {
		for i, o := range ords {
			vals[i] = row[o]
		}
		k := encodeKey(vals)
		buckets[k] = append(buckets[k], id)
	}
	return buckets
}

// bestIndex returns the index of t covering the largest subset of the
// available equality columns, or nil.
func bestIndex(t *Table, available []int) *index {
	avail := map[int]bool{}
	for _, o := range available {
		avail[o] = true
	}
	var best *index
	var names []string
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		ix := t.indexes[n]
		ok := true
		for _, c := range ix.columns {
			if !avail[c] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if best == nil || len(ix.columns) > len(best.columns) {
			best = ix
		}
	}
	return best
}

// evaluableNow reports whether e references only bindings that are already
// bound: earlier FROM items in this scope or anything in outer scopes.
// Unqualified column references and subqueries are conservatively rejected.
func evaluableNow(e Expr, boundBefore []*fromSource, outer *env) bool {
	boundNames := map[string]bool{}
	for _, s := range boundBefore {
		boundNames[s.binding.name] = true
	}
	for sc := outer; sc != nil; sc = sc.parent {
		for _, b := range sc.bindings {
			boundNames[b.name] = true
		}
	}
	ok := true
	var walk func(Expr)
	walk = func(e Expr) {
		if !ok || e == nil {
			return
		}
		switch x := e.(type) {
		case *Literal, *Param:
		case *ColumnRef:
			if x.Table == "" || !boundNames[strings.ToLower(x.Table)] {
				ok = false
			}
		case *BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *UnaryExpr:
			walk(x.Operand)
		case *IsNullExpr:
			walk(x.Operand)
		case *FuncExpr:
			for _, a := range x.Args {
				walk(a)
			}
		case *CaseExpr:
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(x.Else)
		default:
			// Subqueries and anything else: not evaluable for index probing.
			ok = false
		}
	}
	walk(e)
	return ok
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*BinaryExpr); ok && be.Op == "AND" {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []Expr{e}
}

// aggCtx evaluates expressions in a grouped context: aggregate function
// calls are computed over the group's snapshots, everything else is
// evaluated against the representative row.
type aggCtx struct {
	ctx       *evalCtx
	sources   []*fromSource
	snapshots [][][]Value
}

func (a *aggCtx) eval(e Expr) (Value, error) {
	switch x := e.(type) {
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return a.evalAggregate(x)
		}
	case *BinaryExpr:
		if hasAggregate(x) {
			l, err := a.eval(x.Left)
			if err != nil {
				return Null, err
			}
			r, err := a.eval(x.Right)
			if err != nil {
				return Null, err
			}
			return a.ctx.evalBinary(&BinaryExpr{Op: x.Op, Left: &Literal{Value: l}, Right: &Literal{Value: r}})
		}
	case *UnaryExpr:
		if hasAggregate(x) {
			v, err := a.eval(x.Operand)
			if err != nil {
				return Null, err
			}
			return a.ctx.eval(&UnaryExpr{Op: x.Op, Operand: &Literal{Value: v}})
		}
	case *IsNullExpr:
		if hasAggregate(x) {
			v, err := a.eval(x.Operand)
			if err != nil {
				return Null, err
			}
			return a.ctx.eval(&IsNullExpr{Operand: &Literal{Value: v}, Negated: x.Negated})
		}
	case *InExpr:
		if hasAggregate(x.Operand) {
			v, err := a.eval(x.Operand)
			if err != nil {
				return Null, err
			}
			return a.ctx.eval(&InExpr{Operand: &Literal{Value: v}, List: x.List, Subquery: x.Subquery, Negated: x.Negated})
		}
	case *CaseExpr:
		if hasAggregate(x) {
			for _, w := range x.Whens {
				cond, err := a.eval(w.Cond)
				if err != nil {
					return Null, err
				}
				if b, known := cond.AsBool(); known && b {
					return a.eval(w.Then)
				}
			}
			if x.Else != nil {
				return a.eval(x.Else)
			}
			return Null, nil
		}
	}
	return a.ctx.eval(e)
}

func (a *aggCtx) evalAggregate(x *FuncExpr) (Value, error) {
	restore := make([][]Value, len(a.sources))
	for i, s := range a.sources {
		restore[i] = s.binding.row
	}
	defer func() {
		for i, s := range a.sources {
			s.binding.row = restore[i]
		}
	}()

	var count int64
	var sum float64
	allInt := true
	var minV, maxV Value
	haveVal := false
	var distinctSeen map[string]bool
	if x.Distinct {
		distinctSeen = map[string]bool{}
	}

	for _, snap := range a.snapshots {
		for i, s := range a.sources {
			s.binding.row = snap[i]
		}
		if x.Star {
			count++
			continue
		}
		if len(x.Args) != 1 {
			return Null, fmt.Errorf("sql: %s expects one argument", x.Name)
		}
		v, err := a.ctx.eval(x.Args[0])
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			continue
		}
		if x.Distinct {
			k := encodeKey([]Value{v})
			if distinctSeen[k] {
				continue
			}
			distinctSeen[k] = true
		}
		count++
		if f, ok := v.AsFloat(); ok {
			sum += f
			if v.Kind() != KindInt {
				allInt = false
			}
		} else if x.Name == "SUM" || x.Name == "AVG" {
			return Null, fmt.Errorf("sql: %s of non-numeric value", x.Name)
		}
		if !haveVal {
			minV, maxV = v, v
			haveVal = true
		} else {
			if Compare(v, minV) < 0 {
				minV = v
			}
			if Compare(v, maxV) > 0 {
				maxV = v
			}
		}
	}

	switch x.Name {
	case "COUNT":
		return Int(count), nil
	case "SUM":
		if count == 0 {
			return Null, nil
		}
		if allInt {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "AVG":
		if count == 0 {
			return Null, nil
		}
		return Float(sum / float64(count)), nil
	case "MIN":
		if !haveVal {
			return Null, nil
		}
		return minV, nil
	case "MAX":
		if !haveVal {
			return Null, nil
		}
		return maxV, nil
	}
	return Null, fmt.Errorf("sql: unknown aggregate %s", x.Name)
}
