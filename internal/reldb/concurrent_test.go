package reldb

import (
	"fmt"
	"sync"
	"testing"
)

// concurrentFixture builds two tables large enough (>= 8 rows) that
// equality joins over their "(SELECT * FROM t)" views build derived hash
// indexes, the other cache the parallel read path must keep race-free.
func concurrentFixture(t testing.TB) *DB {
	t.Helper()
	db := New()
	stmts := []string{
		`CREATE TABLE Person (id INTEGER NOT NULL, city VARCHAR(32), PRIMARY KEY (id))`,
		`CREATE TABLE Visit (person_id INTEGER NOT NULL, page VARCHAR(64))`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 16; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO Person VALUES (%d, 'city%d')`, i, i%4)); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO Visit VALUES (%d, 'page%d')`, i, i%8)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestConcurrentSelects races concurrent readers over the two read-path
// caches — the DB-level bare-view cache and the per-snapshot derived hash
// indexes — against a writer that keeps invalidating them and a goroutine
// cycling Stats/ResetStats. Run under -race this is the reldb half of the
// parallel read path's correctness argument.
func TestConcurrentSelects(t *testing.T) {
	db := concurrentFixture(t)
	// The join over two bare-view subqueries exercises both caches: the
	// subqueries hit the view cache, the equality predicate builds a
	// derived hash index over the snapshot.
	const joinSQL = `SELECT p.city FROM (SELECT * FROM Person) p, (SELECT * FROM Visit) v WHERE p.id = v.person_id`

	readers := 8
	iters := 40
	if testing.Short() {
		readers, iters = 4, 10
	}

	var wg sync.WaitGroup
	errs := make(chan error, readers+2)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rows, err := db.Query(joinSQL)
				if err != nil {
					errs <- err
					return
				}
				// Every Visit row joins exactly one Person, and the writer
				// only ever appends matched pairs, so the join can only grow.
				if len(rows.Data) < 16 {
					errs <- fmt.Errorf("join returned %d rows, want >= 16", len(rows.Data))
					return
				}
				ok, err := db.QueryExists(`SELECT 1 FROM (SELECT * FROM Person) p WHERE p.id = ?`, Int(int64(i%16)))
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- fmt.Errorf("person %d missing", i%16)
					return
				}
			}
		}()
	}

	// Writer: appends matched Person/Visit pairs, bumping table versions so
	// readers keep refilling the view cache mid-flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			id := 100 + i
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO Person VALUES (%d, 'new')`, id)); err != nil {
				errs <- err
				return
			}
			if _, err := db.Exec(fmt.Sprintf(`INSERT INTO Visit VALUES (%d, 'new')`, id)); err != nil {
				errs <- err
				return
			}
		}
	}()

	// Stats cycler: the counters are updated from every reader at once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s := db.Stats()
			if s.RowsScanned < 0 || s.Statements < 0 {
				errs <- fmt.Errorf("negative stats: %+v", s)
				return
			}
			if i%10 == 9 {
				db.ResetStats()
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// After the dust settles the caches must still serve correct data.
	rows, err := db.Query(joinSQL)
	if err != nil {
		t.Fatal(err)
	}
	want := 16 + iters/2
	if len(rows.Data) != want {
		t.Errorf("final join rows = %d, want %d", len(rows.Data), want)
	}
}
