package reldb

import (
	"errors"
	"strings"
	"testing"
)

func TestCountDistinct(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT COUNT(DISTINCT required), COUNT(required) FROM Purpose`)
	if flat(got) != "2,5" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT policy_id, COUNT(DISTINCT required) FROM Purpose GROUP BY policy_id ORDER BY policy_id`)
	if flat(got) != "1,2;2,1" {
		t.Errorf("got %q", flat(got))
	}
}

func TestViewCacheSeesWrites(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER NOT NULL, PRIMARY KEY (a))`)
	for i := 0; i < 10; i++ {
		db.MustExec(`INSERT INTO t VALUES (?)`, Int(int64(i)))
	}
	view := `SELECT COUNT(*) FROM (SELECT * FROM t) AS v`
	got := queryStrings(t, db, view)
	if flat(got) != "10" {
		t.Fatalf("initial view count %q", flat(got))
	}
	// A write invalidates the cached materialization.
	db.MustExec(`INSERT INTO t VALUES (10)`)
	if got := queryStrings(t, db, view); flat(got) != "11" {
		t.Errorf("after insert: %q", flat(got))
	}
	db.MustExec(`DELETE FROM t WHERE a < 5`)
	if got := queryStrings(t, db, view); flat(got) != "6" {
		t.Errorf("after delete: %q", flat(got))
	}
	db.MustExec(`UPDATE t SET a = a + 100 WHERE a = 5`)
	if got := queryStrings(t, db, `SELECT COUNT(*) FROM (SELECT * FROM t) AS v WHERE v.a = 105`); flat(got) != "1" {
		t.Errorf("after update: %q", flat(got))
	}
}

func TestViewHashJoinAgreesWithScan(t *testing.T) {
	// The derived-table hash join must agree with plain scans on a join
	// through a view, including rows that match nothing.
	mk := func(opts Options) *DB {
		db := NewWithOptions(opts)
		db.MustExec(`CREATE TABLE a (id INTEGER NOT NULL, PRIMARY KEY (id))`)
		db.MustExec(`CREATE TABLE b (a_id INTEGER NOT NULL, v VARCHAR(8))`)
		for i := 0; i < 20; i++ {
			db.MustExec(`INSERT INTO a VALUES (?)`, Int(int64(i)))
			if i%2 == 0 {
				db.MustExec(`INSERT INTO b (a_id, v) VALUES (?, 'x')`, Int(int64(i)))
			}
		}
		return db
	}
	q := `SELECT COUNT(*) FROM a WHERE EXISTS (SELECT * FROM (SELECT * FROM b) AS vb WHERE vb.a_id = a.id)`
	fast := mk(Options{})
	slow := mk(Options{DisableIndexes: true, DisableViewCache: true})
	g1 := queryStrings(t, fast, q)
	g2 := queryStrings(t, slow, q)
	if flat(g1) != flat(g2) || flat(g1) != "10" {
		t.Errorf("fast=%q slow=%q want 10", flat(g1), flat(g2))
	}
}

func TestPrepareAndQueryExistsStmt(t *testing.T) {
	db := fixture(t, Options{})
	stmt, err := db.Prepare(`SELECT * FROM Purpose WHERE Purpose.purpose = ?`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := db.QueryExistsStmt(stmt, Str("current"))
	if err != nil || !ok {
		t.Errorf("exists current: %v %v", ok, err)
	}
	ok, err = db.QueryExistsStmt(stmt, Str("nope"))
	if err != nil || ok {
		t.Errorf("exists nope: %v %v", ok, err)
	}
	// Prepare enforces the complexity limits.
	deep := "SELECT * FROM Purpose WHERE " + strings.Repeat("EXISTS (SELECT * FROM Purpose WHERE ", 30) +
		"purpose = 'x'" + strings.Repeat(")", 30)
	if _, err := db.Prepare(deep); !errors.Is(err, ErrTooComplex) {
		t.Errorf("deep prepare: %v", err)
	}
	// Non-SELECT statements are rejected by QueryExistsStmt.
	ins, err := db.Prepare(`INSERT INTO Policy VALUES (9, 'x')`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryExistsStmt(ins); err == nil {
		t.Error("INSERT through QueryExistsStmt should fail")
	}
}

func TestLikeEscape(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (s VARCHAR(32))`)
	db.MustExec(`INSERT INTO t VALUES ('50% off'), ('a_b'), ('aXb'), ('back\slash')`)
	got := queryStrings(t, db, `SELECT s FROM t WHERE s LIKE '50\% off'`)
	if flat(got) != "50% off" {
		t.Errorf("escaped percent: %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT s FROM t WHERE s LIKE 'a\_b'`)
	if flat(got) != "a_b" {
		t.Errorf("escaped underscore: %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT COUNT(*) FROM t WHERE s LIKE 'a_b'`)
	if flat(got) != "2" {
		t.Errorf("unescaped underscore: %q", flat(got))
	}
}

func TestEscapeLike(t *testing.T) {
	cases := map[string]string{
		"plain":  "plain",
		"50%":    `50\%`,
		"a_b":    `a\_b`,
		`back\s`: `back\\s`,
	}
	for in, want := range cases {
		if got := EscapeLike(in); got != want {
			t.Errorf("EscapeLike(%q) = %q, want %q", in, got, want)
		}
		// The escaped form matches exactly itself.
		if !likeMatch(in, EscapeLike(in)) {
			t.Errorf("likeMatch(%q, escaped) = false", in)
		}
	}
}

func TestBetween(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT COUNT(*) FROM Statement WHERE statement_id BETWEEN 1 AND 1`)
	if flat(got) != "2" {
		t.Errorf("between: %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Statement WHERE statement_id NOT BETWEEN 2 AND 9`)
	if flat(got) != "2" {
		t.Errorf("not between: %q", flat(got))
	}
}

func TestCaseWithoutElse(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT CASE WHEN policy_id = 1 THEN 'one' END FROM Policy ORDER BY policy_id`)
	if flat(got) != "one;NULL" {
		t.Errorf("case no else: %q", flat(got))
	}
}

func TestOrderByMultipleKeys(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT policy_id, purpose FROM Purpose ORDER BY policy_id DESC, purpose ASC`)
	if flat(got) != "2,current;2,telemarketing;1,contact;1,current;1,individual-decision" {
		t.Errorf("multi-key order: %q", flat(got))
	}
}

func TestUpdatePrimaryKeyViolation(t *testing.T) {
	db := fixture(t, Options{})
	if _, err := db.Exec(`UPDATE Policy SET policy_id = 2 WHERE policy_id = 1`); err == nil {
		t.Error("PK-violating update should fail")
	}
	// The non-conflicting update works and keeps indexes consistent.
	if _, err := db.Exec(`UPDATE Policy SET policy_id = 7 WHERE policy_id = 1`); err != nil {
		t.Fatal(err)
	}
	got := queryStrings(t, db, `SELECT name FROM Policy WHERE Policy.policy_id = 7`)
	if flat(got) != "volga" {
		t.Errorf("after pk update: %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Policy WHERE Policy.policy_id = 1`)
	if flat(got) != "0" {
		t.Errorf("old key still indexed: %q", flat(got))
	}
}

func TestQuotedIdentifiersAndComments(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE "select" (a INTEGER)`)
	db.MustExec(`INSERT INTO "select" VALUES (1) -- trailing comment`)
	got := queryStrings(t, db, `SELECT a FROM "select" -- comment
		WHERE a = 1`)
	if flat(got) != "1" {
		t.Errorf("quoted ident: %q", flat(got))
	}
}

func TestConcat(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT name || '-' || policy_id FROM Policy WHERE policy_id = 1`)
	if flat(got) != "volga-1" {
		t.Errorf("concat: %q", flat(got))
	}
}

func TestInsertDefaultColumnOrder(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER, b VARCHAR(4))`)
	db.MustExec(`INSERT INTO t VALUES (1, 'x')`)
	if _, err := db.Exec(`INSERT INTO t VALUES (2)`); err == nil {
		t.Error("short row without column list should fail")
	}
	db.MustExec(`INSERT INTO t (b) VALUES ('y')`)
	got := queryStrings(t, db, `SELECT a, b FROM t ORDER BY b`)
	if flat(got) != "1,x;NULL,y" {
		t.Errorf("got %q", flat(got))
	}
}

func TestStatsCounters(t *testing.T) {
	db := fixture(t, Options{})
	db.ResetStats()
	if _, err := db.Query(`SELECT * FROM Policy`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Statements != 1 || st.RowsScanned != 2 {
		t.Errorf("stats: %+v", st)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER NOT NULL, PRIMARY KEY (a))`)
	done := make(chan error, 10)
	for w := 0; w < 2; w++ {
		go func(w int) {
			for i := 0; i < 50; i++ {
				_, err := db.Exec(`INSERT INTO t VALUES (?)`, Int(int64(w*1000+i)))
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for r := 0; r < 8; r++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := db.Query(`SELECT COUNT(*) FROM (SELECT * FROM t) AS v`); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 10; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	got := queryStrings(t, db, `SELECT COUNT(*) FROM t`)
	if flat(got) != "100" {
		t.Errorf("final count: %q", flat(got))
	}
}
