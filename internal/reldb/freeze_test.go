package reldb

import (
	"errors"
	"sync"
	"testing"
)

// TestFreezeRejectsWritesServesReads covers the frozen-DB contract the
// matching hot path relies on: after Freeze, every mutation fails with
// ErrFrozen while reads keep working — without taking the shared lock,
// so concurrent readers no longer contend on its cache line.
func TestFreezeRejectsWritesServesReads(t *testing.T) {
	db := fixture(t, Options{})

	if db.Frozen() {
		t.Fatal("fresh database reports frozen")
	}
	db.Freeze()
	if !db.Frozen() {
		t.Fatal("Frozen() false after Freeze")
	}

	for _, sql := range []string{
		`INSERT INTO Policy VALUES (3, 'late')`,
		`DELETE FROM Policy WHERE policy_id = 1`,
		`UPDATE Policy SET name = 'renamed' WHERE policy_id = 1`,
		`CREATE TABLE Late (id INTEGER NOT NULL, PRIMARY KEY (id))`,
		`CREATE INDEX ix_late ON Policy (name)`,
		`DROP TABLE Policy`,
	} {
		if _, err := db.Exec(sql); !errors.Is(err, ErrFrozen) {
			t.Errorf("Exec(%s) after Freeze: err = %v, want ErrFrozen", sql, err)
		}
	}

	got := queryStrings(t, db, `SELECT name FROM Policy WHERE policy_id = 1`)
	if len(got) != 1 || got[0][0] != "volga" {
		t.Fatalf("frozen read = %v, want [[volga]]", got)
	}
	exists, err := db.QueryExists(`SELECT 1 FROM Purpose WHERE purpose = 'telemarketing'`)
	if err != nil || !exists {
		t.Fatalf("frozen QueryExists = %v, %v; want true, nil", exists, err)
	}

	// Derived-table view snapshots fill lazily; the first fill may happen
	// after the freeze and must still work (and then serve lock-free).
	for i := 0; i < 2; i++ {
		got = queryStrings(t, db,
			`SELECT v.name FROM (SELECT * FROM Policy) v WHERE v.policy_id = 2`)
		if len(got) != 1 || got[0][0] != "acme" {
			t.Fatalf("frozen view read %d = %v, want [[acme]]", i, got)
		}
	}
}

// TestFrozenConcurrentReads hammers a frozen database from many
// goroutines under -race: the read path skips the RWMutex entirely once
// frozen, so this proves the lock-free path is itself race-free
// (view-cache fills, lazy index builds, and plain scans).
func TestFrozenConcurrentReads(t *testing.T) {
	db := fixture(t, Options{})
	db.Freeze()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rows, err := db.Query(
					`SELECT s.statement_id, p.purpose FROM Statement s, Purpose p
					 WHERE s.policy_id = p.policy_id AND s.statement_id = p.statement_id
					 AND s.policy_id = ?`, Int(1))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if len(rows.Data) != 3 {
					t.Errorf("rows = %d, want 3", len(rows.Data))
					return
				}
				if _, err := db.QueryExists(
					`SELECT 1 FROM (SELECT * FROM Purpose) v WHERE v.required = 'opt-in'`); err != nil {
					t.Errorf("exists: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
