package reldb

import (
	"fmt"
	"sort"
	"strings"
)

// index is a hash index over one or more columns of a table. It maps the
// encoded key of the indexed column values to the row ids holding that key.
type index struct {
	name    string
	columns []int // ordinals into the table schema
	unique  bool
	buckets map[string][]int
}

func (ix *index) keyForRow(row []Value) string {
	var scratch [64]byte
	b := scratch[:0]
	for _, c := range ix.columns {
		b = appendKeyValue(b, row[c])
	}
	return string(b)
}

// Table is a heap of rows plus any number of hash indexes. Deleted rows are
// tombstoned (nil) and skipped during scans; row ids are stable.
type Table struct {
	schema  *TableSchema
	rows    [][]Value
	live    int
	indexes map[string]*index // by lowercase index name
	// version increments on every mutation; caches over the table's
	// contents (materialized views) key on it.
	version int64
	// keyScratch holds each index's encoded key for the row being
	// inserted, reused across inserts so the bulk-load path encodes
	// every key exactly once. Writers already serialize on db.mu.
	keyScratch []indexKey
}

// indexKey pairs an index with the encoded key of the in-flight row.
type indexKey struct {
	ix  *index
	key string
}

func newTable(schema *TableSchema) *Table {
	t := &Table{schema: schema, indexes: map[string]*index{}}
	if len(schema.PrimaryKey) > 0 {
		ords, err := schema.ordinals(schema.PrimaryKey)
		if err != nil {
			// NewTableSchema validated this already.
			panic(err)
		}
		t.indexes["__pk"] = &index{name: "__pk", columns: ords, unique: true, buckets: map[string][]int{}}
	}
	return t
}

// Schema returns the table's schema.
func (t *Table) Schema() *TableSchema { return t.schema }

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return t.live }

// coerce converts v to the column's declared type where a lossless
// conversion exists, otherwise returns an error. NULL passes through if the
// column is nullable.
func coerce(col Column, v Value) (Value, error) {
	if v.IsNull() {
		if !col.Nullable {
			return Null, fmt.Errorf("reldb: column %s is NOT NULL", col.Name)
		}
		return v, nil
	}
	switch col.Type {
	case KindInt:
		if n, ok := v.AsInt(); ok {
			return Int(n), nil
		}
	case KindFloat:
		if f, ok := v.AsFloat(); ok {
			return Float(f), nil
		}
	case KindString:
		return Str(v.AsString()), nil
	case KindBool:
		if b, ok := v.AsBool(); ok {
			return Bool(b), nil
		}
	}
	return Null, fmt.Errorf("reldb: cannot store %s into %s column %s", v.Kind(), col.Type, col.Name)
}

// insert validates, coerces, and appends a row, maintaining all indexes.
func (t *Table) insert(row []Value) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("reldb: table %s: got %d values, want %d", t.schema.Name, len(row), len(t.schema.Columns))
	}
	stored := make([]Value, len(row))
	for i, v := range row {
		cv, err := coerce(t.schema.Columns[i], v)
		if err != nil {
			return fmt.Errorf("%w (table %s)", err, t.schema.Name)
		}
		stored[i] = cv
	}
	for _, ix := range t.indexes {
		if !ix.unique {
			continue
		}
		key := ix.keyForRow(stored)
		if ids := ix.buckets[key]; len(ids) > 0 {
			return fmt.Errorf("reldb: table %s: duplicate key for index %s", t.schema.Name, ix.name)
		}
	}
	id := len(t.rows)
	t.rows = append(t.rows, stored)
	t.live++
	t.version++
	for _, ix := range t.indexes {
		key := ix.keyForRow(stored)
		ix.buckets[key] = append(ix.buckets[key], id)
	}
	return nil
}

// insertShared appends a row without copying or coercing it, the bulk-
// load path for immutable pre-typed rows (shred fragments). Every value
// must already carry its column's exact kind; a row with any lossless
// mismatch falls back to the copying insert. The caller must never
// mutate the slice afterwards — the table aliases it (tombstoning and
// updates replace whole rows, never edit them in place, so aliasing is
// safe).
func (t *Table) insertShared(row []Value) error {
	if len(row) != len(t.schema.Columns) {
		return fmt.Errorf("reldb: table %s: got %d values, want %d", t.schema.Name, len(row), len(t.schema.Columns))
	}
	for i, v := range row {
		col := t.schema.Columns[i]
		if v.IsNull() {
			if !col.Nullable {
				return fmt.Errorf("reldb: column %s is NOT NULL (table %s)", col.Name, t.schema.Name)
			}
			continue
		}
		if v.Kind() != col.Type {
			return t.insert(row)
		}
	}
	t.keyScratch = t.keyScratch[:0]
	for _, ix := range t.indexes {
		key := ix.keyForRow(row)
		if ix.unique && len(ix.buckets[key]) > 0 {
			return fmt.Errorf("reldb: table %s: duplicate key for index %s", t.schema.Name, ix.name)
		}
		t.keyScratch = append(t.keyScratch, indexKey{ix, key})
	}
	id := len(t.rows)
	t.rows = append(t.rows, row)
	t.live++
	t.version++
	for _, ik := range t.keyScratch {
		ik.ix.buckets[ik.key] = append(ik.ix.buckets[ik.key], id)
	}
	return nil
}

// delete tombstones the row with the given id.
func (t *Table) delete(id int) {
	row := t.rows[id]
	if row == nil {
		return
	}
	for _, ix := range t.indexes {
		key := ix.keyForRow(row)
		ids := ix.buckets[key]
		for i, rid := range ids {
			if rid == id {
				ix.buckets[key] = append(ids[:i], ids[i+1:]...)
				break
			}
		}
		if len(ix.buckets[key]) == 0 {
			delete(ix.buckets, key)
		}
	}
	t.rows[id] = nil
	t.live--
	t.version++
}

// update replaces the row with the given id, maintaining indexes and
// re-checking uniqueness.
func (t *Table) update(id int, row []Value) error {
	old := t.rows[id]
	if old == nil {
		return fmt.Errorf("reldb: update of deleted row %d", id)
	}
	stored := make([]Value, len(row))
	for i, v := range row {
		cv, err := coerce(t.schema.Columns[i], v)
		if err != nil {
			return err
		}
		stored[i] = cv
	}
	for _, ix := range t.indexes {
		if !ix.unique {
			continue
		}
		newKey := ix.keyForRow(stored)
		if newKey == ix.keyForRow(old) {
			continue
		}
		if len(ix.buckets[newKey]) > 0 {
			return fmt.Errorf("reldb: table %s: duplicate key for index %s", t.schema.Name, ix.name)
		}
	}
	t.delete(id)
	// delete decremented live and tombstoned; re-insert at same id.
	t.rows[id] = stored
	t.live++
	for _, ix := range t.indexes {
		key := ix.keyForRow(stored)
		ix.buckets[key] = append(ix.buckets[key], id)
	}
	return nil
}

// addIndex builds a named hash index over the given columns.
func (t *Table) addIndex(name string, columns []string, unique bool) error {
	key := strings.ToLower(name)
	if _, dup := t.indexes[key]; dup {
		return fmt.Errorf("reldb: index %s already exists on table %s", name, t.schema.Name)
	}
	ords, err := t.schema.ordinals(columns)
	if err != nil {
		return err
	}
	ix := &index{name: name, columns: ords, unique: unique, buckets: map[string][]int{}}
	for id, row := range t.rows {
		if row == nil {
			continue
		}
		k := ix.keyForRow(row)
		if unique && len(ix.buckets[k]) > 0 {
			return fmt.Errorf("reldb: cannot create unique index %s: duplicate key", name)
		}
		ix.buckets[k] = append(ix.buckets[k], id)
	}
	t.indexes[key] = ix
	return nil
}

// findIndex returns an index whose leading columns are exactly the given
// ordinals (in any order), or nil. Used by the executor to turn equality
// predicates into hash lookups.
func (t *Table) findIndex(ords []int) *index {
	want := append([]int(nil), ords...)
	sort.Ints(want)
	var names []string
	for n := range t.indexes {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic choice
	for _, n := range names {
		ix := t.indexes[n]
		if len(ix.columns) != len(want) {
			continue
		}
		have := append([]int(nil), ix.columns...)
		sort.Ints(have)
		match := true
		for i := range have {
			if have[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// lookup returns the ids of rows whose indexed columns equal the given
// values, using index ix. The values must be ordered to match ix.columns.
func (t *Table) lookup(ix *index, vals []Value) []int {
	return ix.buckets[encodeKey(vals)]
}

// scan calls fn for every live row until fn returns false.
func (t *Table) scan(fn func(id int, row []Value) bool) {
	for id, row := range t.rows {
		if row == nil {
			continue
		}
		if !fn(id, row) {
			return
		}
	}
}
