package reldb

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"p3pdb/internal/faultkit"
	"p3pdb/internal/resource"
)

// bigFixture builds a table large enough that a cross join visits many
// rows, so small budgets trip mid-query.
func bigFixture(t testing.TB, opts Options) *DB {
	t.Helper()
	db := NewWithOptions(opts)
	if _, err := db.Exec(`CREATE TABLE Num (n INTEGER NOT NULL, PRIMARY KEY (n))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 10 {
		stmt := "INSERT INTO Num VALUES "
		for j := 0; j < 10; j++ {
			if j > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d)", i+j)
		}
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// crossJoin visits ~100x100 rows — far beyond any small budget. The
// arithmetic predicate defeats index selection, forcing nested-loop scans.
const crossJoin = `SELECT a.n FROM Num a, Num b WHERE a.n + b.n = 1`

func TestMaxQueryStepsAbortsStatement(t *testing.T) {
	db := bigFixture(t, Options{MaxQuerySteps: 50})
	_, err := db.Query(crossJoin)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// The alias resolves to the shared typed error.
	if !errors.Is(err, resource.ErrBudgetExceeded) {
		t.Fatalf("error does not unwrap to resource.ErrBudgetExceeded: %v", err)
	}
}

func TestMaxQueryStepsZeroIsUnlimited(t *testing.T) {
	db := bigFixture(t, Options{})
	rows, err := db.Query(crossJoin)
	if err != nil {
		t.Fatalf("unbudgeted query failed: %v", err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("want 2 rows (0+1, 1+0), got %d", len(rows.Data))
	}
}

func TestBudgetLargeEnoughGivesSameAnswer(t *testing.T) {
	free := bigFixture(t, Options{})
	capped := bigFixture(t, Options{MaxQuerySteps: 1 << 30})
	a, err := free.Query(crossJoin)
	if err != nil {
		t.Fatal(err)
	}
	b, err := capped.Query(crossJoin)
	if err != nil {
		t.Fatalf("large budget must not alter the result: %v", err)
	}
	if len(a.Data) != len(b.Data) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Data), len(b.Data))
	}
}

func TestQueryCtxCancellation(t *testing.T) {
	db := bigFixture(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the first meter poll must abort
	_, err := db.QueryCtx(ctx, crossJoin)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cause should unwrap to context.Canceled: %v", err)
	}
}

func TestQueryCtxDeadlineDistinguishable(t *testing.T) {
	db := bigFixture(t, Options{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := db.QueryCtx(ctx, crossJoin)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cause should unwrap to context.DeadlineExceeded: %v", err)
	}
}

// TestContextMeterOverridesStatementBudget: a caller-installed meter
// governs the whole call and replaces the per-statement MaxQuerySteps, so
// one match-wide budget can span many small statements.
func TestContextMeterOverridesStatementBudget(t *testing.T) {
	db := bigFixture(t, Options{MaxQuerySteps: 10}) // would abort alone
	m := resource.NewMeter(context.Background(), 1<<30)
	ctx := resource.WithMeter(context.Background(), m)
	if _, err := db.QueryCtx(ctx, crossJoin); err != nil {
		t.Fatalf("context meter should override the statement budget: %v", err)
	}
	if m.Steps() == 0 {
		t.Fatal("context meter was never charged")
	}

	// And a small context meter aborts even with no statement budget.
	db2 := bigFixture(t, Options{})
	small := resource.NewMeter(context.Background(), 50)
	_, err := db2.QueryCtx(resource.WithMeter(context.Background(), small), crossJoin)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded via context meter, got %v", err)
	}
}

// TestMeterSpansStatements: one meter accumulates across statements, so a
// sequence of statements exhausts a shared budget even though each one
// alone would fit.
func TestMeterSpansStatements(t *testing.T) {
	db := bigFixture(t, Options{})
	m := resource.NewMeter(context.Background(), 250)
	ctx := resource.WithMeter(context.Background(), m)
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		_, err = db.QueryCtx(ctx, `SELECT n FROM Num WHERE n < 50`)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("shared meter should exhaust across statements, got %v", err)
	}
}

func TestExecCtxBudget(t *testing.T) {
	db := bigFixture(t, Options{MaxQuerySteps: 10})
	_, err := db.Exec(`UPDATE Num SET n = n WHERE n >= 0`)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded from UPDATE scan, got %v", err)
	}
}

func TestQueryExistsCtxBudget(t *testing.T) {
	db := bigFixture(t, Options{MaxQuerySteps: 50})
	// No pair sums to 1000, so the existence probe cannot early-exit and
	// must scan the whole cross product — tripping the budget.
	_, err := db.QueryExists(`SELECT a.n FROM Num a, Num b WHERE a.n + b.n = 1000`)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

// TestBudgetNeverTruncatesResults: a budget either aborts with the typed
// error or the full result comes back — never a silently shortened row
// set (which would be a wrong decision in the matching layers).
func TestBudgetNeverTruncatesResults(t *testing.T) {
	full := bigFixture(t, Options{})
	want, err := full.Query(`SELECT n FROM Num WHERE n < 37`)
	if err != nil {
		t.Fatal(err)
	}
	for budget := int64(1); budget <= 512; budget *= 2 {
		db := bigFixture(t, Options{MaxQuerySteps: budget})
		rows, err := db.Query(`SELECT n FROM Num WHERE n < 37`)
		if err != nil {
			if !errors.Is(err, ErrBudgetExceeded) {
				t.Fatalf("budget %d: unexpected error %v", budget, err)
			}
			continue
		}
		if len(rows.Data) != len(want.Data) {
			t.Fatalf("budget %d: truncated result: %d rows, want %d",
				budget, len(rows.Data), len(want.Data))
		}
	}
}

func TestRelDBFaultInjection(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	db := bigFixture(t, Options{}) // before arming: Exec passes the same point
	if err := faultkit.Enable(faultkit.PointRelDBQuery + ":error"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT n FROM Num WHERE n = 1`); !errors.Is(err, faultkit.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	faultkit.Reset()
	if _, err := db.Query(`SELECT n FROM Num WHERE n = 1`); err != nil {
		t.Fatalf("after Reset, query should succeed: %v", err)
	}
}
