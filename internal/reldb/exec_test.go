package reldb

import (
	"strings"
	"testing"
)

// fixture creates a small policy-shaped database.
func fixture(t testing.TB, opts Options) *DB {
	t.Helper()
	db := NewWithOptions(opts)
	stmts := []string{
		`CREATE TABLE Policy (policy_id INTEGER NOT NULL, name VARCHAR(64), PRIMARY KEY (policy_id))`,
		`CREATE TABLE Statement (policy_id INTEGER NOT NULL, statement_id INTEGER NOT NULL,
			retention VARCHAR(32), consequence VARCHAR(255), PRIMARY KEY (policy_id, statement_id))`,
		`CREATE TABLE Purpose (policy_id INTEGER NOT NULL, statement_id INTEGER NOT NULL,
			purpose VARCHAR(32) NOT NULL, required VARCHAR(16) NOT NULL,
			PRIMARY KEY (policy_id, statement_id, purpose))`,
		`CREATE INDEX ix_statement_policy ON Statement (policy_id)`,
		`CREATE INDEX ix_purpose_stmt ON Purpose (policy_id, statement_id)`,
		`INSERT INTO Policy VALUES (1, 'volga'), (2, 'acme')`,
		`INSERT INTO Statement VALUES (1, 1, 'stated-purpose', NULL), (1, 2, 'business-practices', 'recs'),
			(2, 1, 'indefinitely', NULL)`,
		`INSERT INTO Purpose VALUES
			(1, 1, 'current', 'always'),
			(1, 2, 'individual-decision', 'opt-in'),
			(1, 2, 'contact', 'opt-in'),
			(2, 1, 'telemarketing', 'always'),
			(2, 1, 'current', 'always')`,
	}
	for _, s := range stmts {
		if _, err := db.Exec(s); err != nil {
			t.Fatalf("fixture %q: %v", s[:min(40, len(s))], err)
		}
	}
	return db
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func queryStrings(t *testing.T, db *DB, sql string, params ...Value) [][]string {
	t.Helper()
	rows, err := db.Query(sql, params...)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	out := make([][]string, len(rows.Data))
	for i, r := range rows.Data {
		out[i] = make([]string, len(r))
		for j, v := range r {
			if v.IsNull() {
				out[i][j] = "NULL"
			} else {
				out[i][j] = v.AsString()
			}
		}
	}
	return out
}

func flat(rows [][]string) string {
	var parts []string
	for _, r := range rows {
		parts = append(parts, strings.Join(r, ","))
	}
	return strings.Join(parts, ";")
}

func TestSelectSimple(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, "SELECT name FROM Policy WHERE policy_id = 2")
	if flat(got) != "acme" {
		t.Errorf("got %q", flat(got))
	}
}

func TestSelectStar(t *testing.T) {
	db := fixture(t, Options{})
	rows, err := db.Query("SELECT * FROM Policy ORDER BY policy_id")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 2 || rows.Columns[0] != "policy_id" {
		t.Errorf("columns: %v", rows.Columns)
	}
	if len(rows.Data) != 2 {
		t.Errorf("rows: %d", len(rows.Data))
	}
}

func TestJoinTwoTables(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT p.name, s.retention FROM Policy p, Statement s
		WHERE p.policy_id = s.policy_id AND s.statement_id = 1 ORDER BY p.name`)
	if flat(got) != "acme,indefinitely;volga,stated-purpose" {
		t.Errorf("got %q", flat(got))
	}
}

func TestCorrelatedExists(t *testing.T) {
	db := fixture(t, Options{})
	// Policies with a telemarketing purpose.
	got := queryStrings(t, db, `SELECT name FROM Policy WHERE EXISTS (
		SELECT * FROM Purpose WHERE Purpose.policy_id = Policy.policy_id
		AND Purpose.purpose = 'telemarketing')`)
	if flat(got) != "acme" {
		t.Errorf("got %q", flat(got))
	}
	// Policies with NO telemarketing purpose.
	got = queryStrings(t, db, `SELECT name FROM Policy WHERE NOT EXISTS (
		SELECT * FROM Purpose WHERE Purpose.policy_id = Policy.policy_id
		AND Purpose.purpose = 'telemarketing')`)
	if flat(got) != "volga" {
		t.Errorf("got %q", flat(got))
	}
}

func TestNestedExistsThreeLevels(t *testing.T) {
	db := fixture(t, Options{})
	// The canonical shape of a translated APPEL rule.
	sql := `SELECT 'block' FROM Policy WHERE Policy.policy_id = 1 AND EXISTS (
		SELECT * FROM Statement WHERE Statement.policy_id = Policy.policy_id AND EXISTS (
			SELECT * FROM Purpose WHERE Purpose.policy_id = Statement.policy_id
			AND Purpose.statement_id = Statement.statement_id
			AND (Purpose.purpose = 'admin' OR Purpose.purpose = 'contact' AND Purpose.required = 'always')))`
	got := queryStrings(t, db, sql)
	if len(got) != 0 {
		t.Errorf("rule should not fire (contact is opt-in): %v", got)
	}
	// Flip: required opt-in matches.
	sql2 := strings.ReplaceAll(sql, "'always'", "'opt-in'")
	got = queryStrings(t, db, sql2)
	if flat(got) != "block" {
		t.Errorf("rule should fire: %v", got)
	}
}

func TestDerivedTable(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT p.name FROM (SELECT 1 AS pid) AS ap, Policy p
		WHERE p.policy_id = ap.pid`)
	if flat(got) != "volga" {
		t.Errorf("got %q", flat(got))
	}
}

func TestInListAndSubquery(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT DISTINCT purpose FROM Purpose
		WHERE purpose IN ('current', 'contact') ORDER BY purpose`)
	if flat(got) != "contact;current" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT name FROM Policy WHERE policy_id IN (
		SELECT policy_id FROM Purpose WHERE purpose = 'contact')`)
	if flat(got) != "volga" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT name FROM Policy WHERE policy_id NOT IN (
		SELECT policy_id FROM Purpose WHERE purpose = 'contact')`)
	if flat(got) != "acme" {
		t.Errorf("got %q", flat(got))
	}
}

func TestLike(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT DISTINCT purpose FROM Purpose WHERE purpose LIKE 'c%' ORDER BY purpose`)
	if flat(got) != "contact;current" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT name FROM Policy WHERE name LIKE '_olga'`)
	if flat(got) != "volga" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT name FROM Policy WHERE name NOT LIKE 'v%' ORDER BY name`)
	if flat(got) != "acme" {
		t.Errorf("got %q", flat(got))
	}
}

func TestLikeMatcher(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"abc", "abc", true},
		{"abc", "a%", true},
		{"abc", "%c", true},
		{"abc", "%b%", true},
		{"abc", "a_c", true},
		{"abc", "a_b", false},
		{"abc", "%%", true},
		{"abc", "", false},
		{"#user.home-info.postal.street", "#user.home-info.%", true},
		{"#user.home-info", "#user.home-info.%", false},
		{"aaab", "a%ab", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippi%x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestNullSemantics(t *testing.T) {
	db := fixture(t, Options{})
	// consequence IS NULL
	got := queryStrings(t, db, `SELECT policy_id, statement_id FROM Statement
		WHERE consequence IS NULL ORDER BY policy_id, statement_id`)
	if flat(got) != "1,1;2,1" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT statement_id FROM Statement WHERE consequence IS NOT NULL`)
	if flat(got) != "2" {
		t.Errorf("got %q", flat(got))
	}
	// NULL = anything is not true.
	got = queryStrings(t, db, `SELECT statement_id FROM Statement WHERE consequence = 'recs' OR consequence = 'nope'`)
	if flat(got) != "2" {
		t.Errorf("got %q", flat(got))
	}
	// NOT (NULL) is NULL, so the row is filtered.
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Statement WHERE NOT (consequence = 'recs')`)
	if flat(got) != "0" {
		t.Errorf("NOT NULL-comparison should filter unknowns, got %q", flat(got))
	}
	// NOT IN with NULL in the list is never true.
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Policy WHERE policy_id NOT IN (2, NULL)`)
	if flat(got) != "0" {
		t.Errorf("NOT IN with NULL, got %q", flat(got))
	}
}

func TestAggregates(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT COUNT(*), COUNT(consequence), MIN(statement_id), MAX(statement_id) FROM Statement`)
	if flat(got) != "3,1,1,2" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT SUM(statement_id), AVG(statement_id) FROM Statement WHERE policy_id = 1`)
	if flat(got) != "3,1.5" {
		t.Errorf("got %q", flat(got))
	}
	// Aggregate over empty input yields one row.
	got = queryStrings(t, db, `SELECT COUNT(*), MAX(statement_id) FROM Statement WHERE policy_id = 99`)
	if flat(got) != "0,NULL" {
		t.Errorf("got %q", flat(got))
	}
}

func TestGroupByHaving(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT policy_id, COUNT(*) FROM Purpose
		GROUP BY policy_id ORDER BY policy_id`)
	if flat(got) != "1,3;2,2" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT policy_id, COUNT(*) FROM Purpose
		GROUP BY policy_id HAVING COUNT(*) > 2`)
	if flat(got) != "1,3" {
		t.Errorf("got %q", flat(got))
	}
	// Group by with join.
	got = queryStrings(t, db, `SELECT p.name, COUNT(*) FROM Policy p, Purpose u
		WHERE p.policy_id = u.policy_id GROUP BY p.name ORDER BY p.name`)
	if flat(got) != "acme,2;volga,3" {
		t.Errorf("got %q", flat(got))
	}
}

func TestOrderByNullsAndDesc(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT consequence FROM Statement ORDER BY consequence`)
	if flat(got) != "NULL;NULL;recs" {
		t.Errorf("nulls first: %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT statement_id FROM Statement WHERE policy_id = 1 ORDER BY statement_id DESC`)
	if flat(got) != "2;1" {
		t.Errorf("desc: %q", flat(got))
	}
}

func TestDistinctAndLimit(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT DISTINCT required FROM Purpose ORDER BY required`)
	if flat(got) != "always;opt-in" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT purpose FROM Purpose ORDER BY purpose LIMIT 2`)
	if len(got) != 2 {
		t.Errorf("limit: %d rows", len(got))
	}
}

func TestUpdateDelete(t *testing.T) {
	db := fixture(t, Options{})
	n, err := db.Exec(`UPDATE Purpose SET required = 'opt-out' WHERE purpose = 'contact'`)
	if err != nil || n != 1 {
		t.Fatalf("update: %d, %v", n, err)
	}
	got := queryStrings(t, db, `SELECT required FROM Purpose WHERE purpose = 'contact'`)
	if flat(got) != "opt-out" {
		t.Errorf("after update: %q", flat(got))
	}
	n, err = db.Exec(`DELETE FROM Purpose WHERE policy_id = 2`)
	if err != nil || n != 2 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Purpose`)
	if flat(got) != "3" {
		t.Errorf("after delete: %q", flat(got))
	}
	// Index still consistent after delete: probe by key.
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Purpose WHERE policy_id = 2 AND statement_id = 1`)
	if flat(got) != "0" {
		t.Errorf("index after delete: %q", flat(got))
	}
}

func TestPrimaryKeyViolation(t *testing.T) {
	db := fixture(t, Options{})
	if _, err := db.Exec(`INSERT INTO Policy VALUES (1, 'dup')`); err == nil {
		t.Error("expected duplicate key error")
	}
	// Original row unharmed.
	got := queryStrings(t, db, `SELECT name FROM Policy WHERE policy_id = 1`)
	if flat(got) != "volga" {
		t.Errorf("got %q", flat(got))
	}
}

func TestNotNullViolation(t *testing.T) {
	db := fixture(t, Options{})
	if _, err := db.Exec(`INSERT INTO Purpose VALUES (9, 9, NULL, 'always')`); err == nil {
		t.Error("expected NOT NULL violation")
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (a INTEGER, b VARCHAR(10))`)
	db.MustExec(`INSERT INTO t VALUES ('7', 42)`)
	got := queryStrings(t, db, `SELECT a + 1, b || '!' FROM t`)
	if flat(got) != "8,42!" {
		t.Errorf("got %q", flat(got))
	}
	if _, err := db.Exec(`INSERT INTO t VALUES ('xyz', 'ok')`); err == nil {
		t.Error("expected coercion failure for non-numeric string into INTEGER")
	}
}

func TestParams(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT name FROM Policy WHERE policy_id = ?`, Int(2))
	if flat(got) != "acme" {
		t.Errorf("got %q", flat(got))
	}
	if _, err := db.Query(`SELECT * FROM Policy WHERE policy_id = ?`); err == nil {
		t.Error("expected unbound parameter error")
	}
}

func TestIndexUsage(t *testing.T) {
	db := fixture(t, Options{})
	db.ResetStats()
	// Point query on PK should use the index, not scan.
	if _, err := db.Query(`SELECT * FROM Purpose WHERE Purpose.policy_id = 1 AND Purpose.statement_id = 2`); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.IndexLookups == 0 {
		t.Error("expected an index lookup")
	}
	if st.RowsScanned != 0 {
		t.Errorf("expected no scanned rows, got %d", st.RowsScanned)
	}

	// With indexes disabled, the same query scans.
	db2 := fixture(t, Options{DisableIndexes: true})
	db2.ResetStats()
	if _, err := db2.Query(`SELECT * FROM Purpose WHERE Purpose.policy_id = 1 AND Purpose.statement_id = 2`); err != nil {
		t.Fatal(err)
	}
	st2 := db2.Stats()
	if st2.IndexLookups != 0 || st2.RowsScanned == 0 {
		t.Errorf("disabled indexes: %+v", st2)
	}
}

func TestCorrelatedIndexedJoin(t *testing.T) {
	db := fixture(t, Options{})
	db.ResetStats()
	got := queryStrings(t, db, `SELECT COUNT(*) FROM Statement s WHERE EXISTS (
		SELECT * FROM Purpose WHERE Purpose.policy_id = s.policy_id
		AND Purpose.statement_id = s.statement_id AND Purpose.required = 'opt-in')`)
	if flat(got) != "1" {
		t.Errorf("got %q", flat(got))
	}
	if db.Stats().IndexLookups == 0 {
		t.Error("correlated subquery should probe the Purpose index")
	}
}

func TestQueryExistsEarlyStop(t *testing.T) {
	db := fixture(t, Options{})
	ok, err := db.QueryExists(`SELECT 'block' FROM Purpose WHERE required = 'always'`)
	if err != nil || !ok {
		t.Fatalf("exists: %v %v", ok, err)
	}
	ok, err = db.QueryExists(`SELECT 'block' FROM Purpose WHERE required = 'never'`)
	if err != nil || ok {
		t.Fatalf("not exists: %v %v", ok, err)
	}
}

func TestScalarSubquery(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT (SELECT MAX(statement_id) FROM Statement WHERE policy_id = Policy.policy_id)
		FROM Policy ORDER BY policy_id`)
	if flat(got) != "2;1" {
		t.Errorf("got %q", flat(got))
	}
	if _, err := db.Query(`SELECT (SELECT statement_id FROM Statement) FROM Policy`); err == nil {
		t.Error("expected multi-row scalar subquery error")
	}
}

func TestErrorCases(t *testing.T) {
	db := fixture(t, Options{})
	cases := []string{
		`SELECT * FROM NoSuchTable`,
		`SELECT nosuchcol FROM Policy`,
		`SELECT Policy.nosuch FROM Policy`,
		`SELECT x.name FROM Policy`,
		`SELECT * FROM Policy p, Policy p`,
		`SELECT name, COUNT(*) FROM Policy`, // mixing non-grouped column is tolerated? No: name not in GROUP BY but we take representative row — verify it at least runs or errors consistently
	}
	for _, sql := range cases[:5] {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("Query(%q): expected error", sql)
		}
	}
	if _, err := db.Exec(`INSERT INTO Policy (policy_id) VALUES (1, 2)`); err == nil {
		t.Error("expected arity error")
	}
	if _, err := db.Exec(`CREATE TABLE Policy (a INTEGER)`); err == nil {
		t.Error("expected duplicate table error")
	}
	if _, err := db.Exec(`DROP TABLE NoSuch`); err == nil {
		t.Error("expected drop error")
	}
	if _, err := db.Exec(`CREATE INDEX ix ON NoSuch (a)`); err == nil {
		t.Error("expected index on missing table error")
	}
}

func TestDropTable(t *testing.T) {
	db := fixture(t, Options{})
	if _, err := db.Exec(`DROP TABLE Purpose`); err != nil {
		t.Fatal(err)
	}
	if db.HasTable("Purpose") {
		t.Error("table still present")
	}
	if _, err := db.Query(`SELECT * FROM Purpose`); err == nil {
		t.Error("expected missing table error")
	}
}

func TestCaseExpression(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT name, CASE WHEN policy_id = 1 THEN 'first' ELSE 'rest' END FROM Policy ORDER BY policy_id`)
	if flat(got) != "volga,first;acme,rest" {
		t.Errorf("got %q", flat(got))
	}
}

func TestScalarFunctions(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE t (s VARCHAR(20), n INTEGER)`)
	db.MustExec(`INSERT INTO t VALUES ('Hello', -4), (NULL, 2)`)
	got := queryStrings(t, db, `SELECT UPPER(s), LOWER(s), LENGTH(s), ABS(n), COALESCE(s, 'dflt'), SUBSTR(s, 2, 3) FROM t WHERE s IS NOT NULL`)
	if flat(got) != "HELLO,hello,5,4,Hello,ell" {
		t.Errorf("got %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT COALESCE(s, 'dflt'), UPPER(s) FROM t WHERE s IS NULL`)
	if flat(got) != "dflt,NULL" {
		t.Errorf("got %q", flat(got))
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	db := New()
	got := queryStrings(t, db, `SELECT 1 + 2, 'x' || 'y'`)
	if flat(got) != "3,xy" {
		t.Errorf("got %q", flat(got))
	}
}

func TestConcurrentReads(t *testing.T) {
	db := fixture(t, Options{})
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 50; j++ {
				_, err := db.Query(`SELECT COUNT(*) FROM Purpose WHERE policy_id = 1`)
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
