package reldb

import "testing"

func TestArithmetic(t *testing.T) {
	db := New()
	cases := []struct {
		sql  string
		want string
	}{
		{`SELECT 2 + 3`, "5"},
		{`SELECT 2 - 3`, "-1"},
		{`SELECT 2 * 3`, "6"},
		{`SELECT 7 / 2`, "3"},
		{`SELECT 7.0 / 2`, "3.5"},
		{`SELECT 1 + 2.5`, "3.5"},
		{`SELECT 2.5 * 2`, "5"},
		{`SELECT 1.5 - 0.5`, "1"},
		{`SELECT -3`, "-3"},
		{`SELECT -(2.5)`, "-2.5"},
	}
	for _, c := range cases {
		got := queryStrings(t, db, c.sql)
		if flat(got) != c.want {
			t.Errorf("%s = %q, want %q", c.sql, flat(got), c.want)
		}
	}
	for _, sql := range []string{
		`SELECT 1 / 0`,
		`SELECT 1.0 / 0`,
		`SELECT 'x' + 1`,
		`SELECT 'x' * 2.0`,
		`SELECT -'abc'`,
	} {
		if _, err := db.Query(sql); err == nil {
			t.Errorf("%s: expected error", sql)
		}
	}
}

func TestAggregateInsideExpressions(t *testing.T) {
	db := fixture(t, Options{})
	got := queryStrings(t, db, `SELECT COUNT(*) * 10 + MAX(statement_id) FROM Statement`)
	if flat(got) != "32" {
		t.Errorf("agg arithmetic: %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT policy_id FROM Statement GROUP BY policy_id HAVING NOT (COUNT(*) > 1)`)
	if flat(got) != "2" {
		t.Errorf("unary over aggregate: %q", flat(got))
	}
	// Aggregates of CASE and IN expressions exercise hasAggregate walks.
	got = queryStrings(t, db, `SELECT SUM(CASE WHEN retention IN ('stated-purpose') THEN 1 ELSE 0 END) FROM Statement`)
	if flat(got) != "1" {
		t.Errorf("sum of case: %q", flat(got))
	}
	got = queryStrings(t, db, `SELECT COUNT(*) FROM Statement HAVING COUNT(consequence) IS NOT NULL`)
	if flat(got) != "3" {
		t.Errorf("having is-null over aggregate: %q", flat(got))
	}
	if _, err := db.Query(`SELECT MIN(statement_id, policy_id) FROM Statement`); err == nil {
		t.Error("aggregate arity error expected")
	}
	if _, err := db.Query(`SELECT SUM(consequence) FROM Statement`); err == nil {
		t.Error("SUM of strings should fail")
	}
}

func TestAvgAndFloatAggregates(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE m (v DOUBLE)`)
	db.MustExec(`INSERT INTO m VALUES (1.5), (2.5), (NULL)`)
	got := queryStrings(t, db, `SELECT SUM(v), AVG(v), COUNT(v), COUNT(*) FROM m`)
	if flat(got) != "4,2,2,3" {
		t.Errorf("float aggs: %q", flat(got))
	}
}
