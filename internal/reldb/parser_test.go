package reldb

import (
	"errors"
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := lexAll("SELECT a.b, 'it''s', 3.5 FROM t WHERE x <> 2 -- comment\n AND y LIKE 'a%'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.kind == tokEOF {
			break
		}
		texts = append(texts, tok.text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.5", "FROM", "t", "WHERE", "x", "<>", "2", "AND", "y", "LIKE", "a%"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v, want %v", texts, want)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", `"unterminated`, "a @ b"} {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexAll(%q): expected error", src)
		}
	}
}

func TestParseSelectShape(t *testing.T) {
	stmt, err := Parse(`SELECT 'block' AS behavior, p.policy_id
		FROM Policy p, Statement AS s
		WHERE p.policy_id = s.policy_id AND EXISTS (
			SELECT * FROM Purpose WHERE Purpose.statement_id = s.statement_id
			AND (Purpose.purpose = 'admin' OR Purpose.purpose = 'contact' AND Purpose.required = 'always'))
		ORDER BY p.policy_id DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	if len(sel.Items) != 2 || sel.Items[0].Alias != "behavior" {
		t.Errorf("select items: %+v", sel.Items)
	}
	if len(sel.From) != 2 || sel.From[0].Alias != "p" || sel.From[1].Alias != "s" {
		t.Errorf("from: %+v", sel.From)
	}
	if sel.Limit != 10 || len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order/limit: %+v %d", sel.OrderBy, sel.Limit)
	}
	and, ok := sel.Where.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("where: %#v", sel.Where)
	}
	if _, ok := and.Right.(*ExistsExpr); !ok {
		t.Errorf("right of AND should be EXISTS, got %#v", and.Right)
	}
}

func TestParsePrecedence(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	if err != nil {
		t.Fatal(err)
	}
	or := stmt.(*SelectStmt).Where.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op = %s, want OR (AND binds tighter)", or.Op)
	}
	and := or.Right.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("right = %s, want AND", and.Op)
	}
}

func TestParseNotIn(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE purpose NOT IN ('current', 'admin')")
	if err != nil {
		t.Fatal(err)
	}
	in := stmt.(*SelectStmt).Where.(*InExpr)
	if !in.Negated || len(in.List) != 2 {
		t.Errorf("in: %+v", in)
	}
}

func TestParseInSubquery(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE id IN (SELECT policy_id FROM Policyref)")
	if err != nil {
		t.Fatal(err)
	}
	in := stmt.(*SelectStmt).Where.(*InExpr)
	if in.Subquery == nil {
		t.Error("expected IN subquery")
	}
}

func TestParseIsNullBetweenCase(t *testing.T) {
	stmt, err := Parse(`SELECT CASE WHEN a IS NULL THEN 'n' WHEN a BETWEEN 1 AND 5 THEN 'mid' ELSE 'hi' END FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	c := stmt.(*SelectStmt).Items[0].Expr.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case: %+v", c)
	}
	if _, ok := c.Whens[0].Cond.(*IsNullExpr); !ok {
		t.Errorf("first WHEN should be IS NULL, got %#v", c.Whens[0].Cond)
	}
}

func TestParseDerivedTable(t *testing.T) {
	stmt, err := Parse("SELECT ap.policy_id FROM (SELECT 3 AS policy_id) AS ap")
	if err != nil {
		t.Fatal(err)
	}
	from := stmt.(*SelectStmt).From
	if len(from) != 1 || from[0].Subquery == nil || from[0].Alias != "ap" {
		t.Errorf("from: %+v", from)
	}
	if _, err := Parse("SELECT * FROM (SELECT 1)"); err == nil {
		t.Error("derived table without alias should fail")
	}
}

func TestParseDML(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*InsertStmt)
	if len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("insert: %+v", ins)
	}
	stmt, err = Parse("UPDATE t SET a = a + 1, b = 'z' WHERE a < 5")
	if err != nil {
		t.Fatal(err)
	}
	up := stmt.(*UpdateStmt)
	if len(up.Set) != 2 || up.Where == nil {
		t.Errorf("update: %+v", up)
	}
	stmt, err = Parse("DELETE FROM t WHERE b = 'x'")
	if err != nil {
		t.Fatal(err)
	}
	if stmt.(*DeleteStmt).Where == nil {
		t.Error("delete where missing")
	}
}

func TestParseDDL(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE Purpose (
		policy_id INTEGER NOT NULL,
		statement_id INTEGER NOT NULL,
		purpose VARCHAR(32) NOT NULL,
		required VARCHAR(16),
		PRIMARY KEY (policy_id, statement_id, purpose))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTableStmt)
	if len(ct.Columns) != 4 || len(ct.PrimaryKey) != 3 {
		t.Errorf("create table: %+v", ct)
	}
	if ct.Columns[0].Nullable || !ct.Columns[3].Nullable {
		t.Errorf("nullability wrong: %+v", ct.Columns)
	}
	stmt, err = Parse("CREATE UNIQUE INDEX ix ON t (a, b)")
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndexStmt)
	if !ci.Unique || len(ci.Columns) != 2 {
		t.Errorf("create index: %+v", ci)
	}
	if _, err := Parse("DROP TABLE t"); err != nil {
		t.Errorf("drop: %v", err)
	}
}

func TestParseFetchFirst(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t FETCH FIRST 1 ROWS ONLY")
	if err != nil {
		t.Fatal(err)
	}
	if got := stmt.(*SelectStmt).Limit; got != 1 {
		t.Errorf("limit = %d", got)
	}
}

func TestParseParams(t *testing.T) {
	stmt, err := Parse("SELECT * FROM t WHERE a = ? AND b = ?")
	if err != nil {
		t.Fatal(err)
	}
	conj := splitAnd(stmt.(*SelectStmt).Where)
	p0 := conj[0].(*BinaryExpr).Right.(*Param)
	p1 := conj[1].(*BinaryExpr).Right.(*Param)
	if p0.Index != 0 || p1.Index != 1 {
		t.Errorf("param indexes: %d %d", p0.Index, p1.Index)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"INSERT t VALUES (1)",
		"CREATE TABLE t ()",
		"CREATE TABLE t (a BADTYPE)",
		"SELECT * FROM t; SELECT * FROM t",
		"SELECT * FROM t WHERE a = ",
		"SELECT CASE END FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

func TestComplexityLimit(t *testing.T) {
	// Build nesting depth beyond the limit.
	depth := 30
	var b strings.Builder
	b.WriteString("SELECT * FROM t WHERE ")
	for i := 0; i < depth; i++ {
		b.WriteString("EXISTS (SELECT * FROM t WHERE ")
	}
	b.WriteString("a = 1")
	for i := 0; i < depth; i++ {
		b.WriteString(")")
	}
	_, err := parseWithLimit(b.String(), 24, 1000)
	if err == nil {
		t.Fatal("expected complexity error")
	}
	if !errors.Is(err, ErrTooComplex) {
		t.Errorf("error %v should wrap ErrTooComplex", err)
	}
	// Under the limit it parses.
	if _, err := parseWithLimit(b.String(), 64, 1000); err != nil {
		t.Errorf("under limit: %v", err)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	if _, err := Parse("SELECT 1;"); err != nil {
		t.Errorf("trailing semicolon: %v", err)
	}
}
