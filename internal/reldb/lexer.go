package reldb

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies SQL tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords are uppercased; identifiers keep original case
	pos  int    // byte offset in the input, for error messages
}

// sqlKeywords is the set of reserved words recognized by the parser. A bare
// identifier matching one of these (case-insensitively) lexes as tokKeyword.
var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "EXISTS": true, "IN": true, "LIKE": true, "IS": true,
	"NULL": true, "AS": true, "INSERT": true, "INTO": true, "VALUES": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "UNIQUE": true, "ON": true,
	"PRIMARY": true, "KEY": true, "DROP": true, "DELETE": true, "UPDATE": true,
	"SET": true, "GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true, "DISTINCT": true, "ALL": true,
	"TRUE": true, "FALSE": true, "INTEGER": true, "INT": true, "BIGINT": true,
	"DOUBLE": true, "FLOAT": true, "REAL": true, "VARCHAR": true, "TEXT": true,
	"CHAR": true, "BOOLEAN": true, "BETWEEN": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "UNION": true, "FETCH": true,
	"FIRST": true, "ROWS": true, "ONLY": true,
}

// lexer turns a SQL string into tokens.
type lexer struct {
	src string
	pos int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql: %s at line %d column %d", fmt.Sprintf(format, args...), line, col)
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos}, nil

scan:
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		// String literal with '' escaping.
		var b strings.Builder
		l.pos++
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated string literal")
			}
			if l.src[l.pos] == '\'' {
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{kind: tokString, text: b.String(), pos: start}, nil

	case c == '"':
		// Quoted identifier.
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errorf(start, "unterminated quoted identifier")
			}
			if l.src[l.pos] == '"' {
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{kind: tokIdent, text: b.String(), pos: start}, nil

	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		for l.pos < len(l.src) {
			c := l.src[l.pos]
			if (c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
				((c == '+' || c == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E')) {
				l.pos++
				continue
			}
			break
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil

	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if sqlKeywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start}, nil
		}
		return token{kind: tokIdent, text: word, pos: start}, nil

	default:
		// Multi-char operators first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "!=", "<=", ">=", "||":
			l.pos += 2
			return token{kind: tokSymbol, text: two, pos: start}, nil
		}
		switch c {
		case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '.', ';', '?':
			l.pos++
			return token{kind: tokSymbol, text: string(c), pos: start}, nil
		}
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, error) {
	l := &lexer{src: src}
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
