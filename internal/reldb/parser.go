package reldb

import (
	"fmt"
	"strconv"
	"strings"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks    []token
	pos     int
	src     string
	params  int // number of '?' parameters seen
	depth   int // current subquery nesting depth
	selects int // total SELECT blocks seen in the statement
	// maxDepth and maxSelects bound subquery nesting and the total
	// number of query blocks; statements beyond either are rejected as
	// "too complex", emulating statement-complexity limits of the era's
	// database engines (the paper's XTABLE-generated SQL for the Medium
	// preference hit such a limit on DB2).
	maxDepth   int
	maxSelects int
}

// ErrTooComplex is wrapped by parse errors caused by exceeding the engine's
// statement-complexity limit.
var ErrTooComplex = fmt.Errorf("statement too complex")

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	return parseWithLimit(src, defaultMaxSubqueryDepth, defaultMaxSubqueries)
}

// defaultMaxSubqueryDepth and defaultMaxSubqueries are the engine's
// statement-complexity limits: the maximum nesting depth of subqueries and
// the maximum number of query blocks in one statement.
const (
	defaultMaxSubqueryDepth = 24
	defaultMaxSubqueries    = 64
)

func parseWithLimit(src string, maxDepth, maxSelects int) (Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src, maxDepth: maxDepth, maxSelects: maxSelects}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow a trailing semicolon.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.pos++
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %q after end of statement", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	line, col := 1, 1
	for i := 0; i < t.pos && i < len(p.src); i++ {
		if p.src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return fmt.Errorf("sql: %s at line %d column %d", fmt.Sprintf(format, args...), line, col)
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return nil
	}
	return p.errorf("expected %s, found %q", kw, t.text)
}

// acceptKeyword consumes the keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

// expectSymbol consumes the given symbol or fails.
func (p *parser) expectSymbol(sym string) error {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.advance()
		return nil
	}
	return p.errorf("expected %q, found %q", sym, t.text)
}

// acceptSymbol consumes the symbol if present.
func (p *parser) acceptSymbol(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.advance()
		return true
	}
	return false
}

// parseIdent consumes an identifier (or unreserved keyword used as a name).
func (p *parser) parseIdent() (string, error) {
	t := p.peek()
	if t.kind == tokIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errorf("expected identifier, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		if p.peek2().kind == tokKeyword && p.peek2().text == "TABLE" {
			return p.parseCreateTable()
		}
		return p.parseCreateIndex()
	case "DROP":
		return p.parseDropTable()
	}
	return nil, p.errorf("unsupported statement %q", t.text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if p.depth > p.maxDepth {
		return nil, fmt.Errorf("sql: %w: subquery nesting exceeds %d levels", ErrTooComplex, p.maxDepth)
	}
	p.selects++
	if p.selects > p.maxSelects {
		return nil, fmt.Errorf("sql: %w: statement has more than %d query blocks", ErrTooComplex, p.maxSelects)
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	if p.acceptKeyword("DISTINCT") {
		s.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	if p.acceptSymbol("*") {
		s.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().kind == tokIdent {
				item.Alias = p.advance().text
			}
			s.Items = append(s.Items, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			fi, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, fi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				oi.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT")
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	// DB2-style FETCH FIRST n ROWS ONLY.
	if p.acceptKeyword("FETCH") {
		if err := p.expectKeyword("FIRST"); err != nil {
			return nil, err
		}
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after FETCH FIRST")
		}
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.errorf("bad FETCH FIRST %q", t.text)
		}
		if err := p.expectKeyword("ROWS"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ONLY"); err != nil {
			return nil, err
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	if p.acceptSymbol("(") {
		p.depth++
		sub, err := p.parseSelect()
		p.depth--
		if err != nil {
			return FromItem{}, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return FromItem{}, err
		}
		fi := FromItem{Subquery: sub}
		p.acceptKeyword("AS")
		a, err := p.parseIdent()
		if err != nil {
			return FromItem{}, p.errorf("derived table requires an alias")
		}
		fi.Alias = a
		return fi, nil
	}
	name, err := p.parseIdent()
	if err != nil {
		return FromItem{}, err
	}
	fi := FromItem{Table: name}
	if p.acceptKeyword("AS") {
		a, err := p.parseIdent()
		if err != nil {
			return FromItem{}, err
		}
		fi.Alias = a
	} else if p.peek().kind == tokIdent {
		fi.Alias = p.advance().text
	}
	return fi, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: table}
	if p.acceptSymbol("(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: table}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Set = append(st.Set, SetClause{Column: col, Value: e})
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

func (p *parser) parseCreateTable() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &CreateTableStmt{Table: table}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		if p.peek().kind == tokKeyword && p.peek().text == "PRIMARY" {
			p.advance()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				st.PrimaryKey = append(st.PrimaryKey, c)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			st.Columns = append(st.Columns, col)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseColumnDef() (Column, error) {
	name, err := p.parseIdent()
	if err != nil {
		return Column{}, err
	}
	t := p.peek()
	if t.kind != tokKeyword {
		return Column{}, p.errorf("expected column type, found %q", t.text)
	}
	var kind Kind
	switch t.text {
	case "INTEGER", "INT", "BIGINT":
		kind = KindInt
	case "DOUBLE", "FLOAT", "REAL":
		kind = KindFloat
	case "VARCHAR", "TEXT", "CHAR":
		kind = KindString
	case "BOOLEAN":
		kind = KindBool
	default:
		return Column{}, p.errorf("unsupported column type %q", t.text)
	}
	p.advance()
	// Optional length, ignored: VARCHAR(255).
	if p.acceptSymbol("(") {
		if p.peek().kind != tokNumber {
			return Column{}, p.errorf("expected length in type")
		}
		p.advance()
		if err := p.expectSymbol(")"); err != nil {
			return Column{}, err
		}
	}
	col := Column{Name: name, Type: kind, Nullable: true}
	if p.acceptKeyword("NOT") {
		if err := p.expectKeyword("NULL"); err != nil {
			return Column{}, err
		}
		col.Nullable = false
	} else {
		p.acceptKeyword("NULL")
	}
	return col, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	st := &CreateIndexStmt{}
	if p.acceptKeyword("UNIQUE") {
		st.Unique = true
	}
	if err := p.expectKeyword("INDEX"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Table = table
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	for {
		c, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		st.Columns = append(st.Columns, c)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	return &DropTableStmt{Table: table}, nil
}

// --- Expression grammar (precedence climbing) ---
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := additive
//	             [ (=|<>|<|<=|>|>=) additive
//	             | [NOT] IN ( list | select )
//	             | [NOT] LIKE additive
//	             | IS [NOT] NULL
//	             | [NOT] BETWEEN additive AND additive ]
//	additive := multiplicative ((+|-|'||') multiplicative)*
//	multiplicative := unary ((*|/) unary)*
//	unary   := - unary | primary
//	primary := literal | ? | ident[.ident] | func(...) | ( expr | select ) | EXISTS ( select ) | CASE ...

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// Optional NOT before IN / LIKE / BETWEEN.
	negated := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		n := p.peek2()
		if n.kind == tokKeyword && (n.text == "IN" || n.text == "LIKE" || n.text == "BETWEEN") {
			p.advance()
			negated = true
		}
	}
	t := p.peek()
	switch {
	case t.kind == tokSymbol && (t.text == "=" || t.text == "<>" || t.text == "!=" ||
		t.text == "<" || t.text == "<=" || t.text == ">" || t.text == ">="):
		p.advance()
		op := t.text
		if op == "!=" {
			op = "<>"
		}
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, Left: left, Right: right}, nil

	case t.kind == tokKeyword && t.text == "IN":
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &InExpr{Operand: left, Negated: negated}
		if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
			p.depth++
			sub, err := p.parseSelect()
			p.depth--
			if err != nil {
				return nil, err
			}
			in.Subquery = sub
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.acceptSymbol(",") {
					break
				}
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil

	case t.kind == tokKeyword && t.text == "LIKE":
		p.advance()
		right, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		if negated {
			e = &UnaryExpr{Op: "NOT", Operand: e}
		}
		return e, nil

	case t.kind == tokKeyword && t.text == "BETWEEN":
		p.advance()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e Expr = &BinaryExpr{
			Op:    "AND",
			Left:  &BinaryExpr{Op: ">=", Left: left, Right: lo},
			Right: &BinaryExpr{Op: "<=", Left: left, Right: hi},
		}
		if negated {
			e = &UnaryExpr{Op: "NOT", Operand: e}
		}
		return e, nil

	case t.kind == tokKeyword && t.text == "IS":
		p.advance()
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Operand: left, Negated: neg}, nil
	}
	return left, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Operand: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return &Literal{Value: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return &Literal{Value: Int(n)}, nil

	case t.kind == tokString:
		p.advance()
		return &Literal{Value: Str(t.text)}, nil

	case t.kind == tokSymbol && t.text == "?":
		p.advance()
		e := &Param{Index: p.params}
		p.params++
		return e, nil

	case t.kind == tokKeyword && t.text == "NULL":
		p.advance()
		return &Literal{Value: Null}, nil

	case t.kind == tokKeyword && t.text == "TRUE":
		p.advance()
		return &Literal{Value: Bool(true)}, nil

	case t.kind == tokKeyword && t.text == "FALSE":
		p.advance()
		return &Literal{Value: Bool(false)}, nil

	case t.kind == tokKeyword && t.text == "EXISTS":
		p.advance()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		p.depth++
		sub, err := p.parseSelect()
		p.depth--
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Subquery: sub}, nil

	case t.kind == tokKeyword && t.text == "CASE":
		return p.parseCase()

	case t.kind == tokSymbol && t.text == "(":
		p.advance()
		if p.peek().kind == tokKeyword && p.peek().text == "SELECT" {
			p.depth++
			sub, err := p.parseSelect()
			p.depth--
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Subquery: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil

	case t.kind == tokIdent:
		name := p.advance().text
		// Function call?
		if p.peek().kind == tokSymbol && p.peek().text == "(" {
			p.advance()
			fn := &FuncExpr{Name: strings.ToUpper(name)}
			if p.acceptSymbol("*") {
				fn.Star = true
			} else if !(p.peek().kind == tokSymbol && p.peek().text == ")") {
				fn.Distinct = p.acceptKeyword("DISTINCT")
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fn.Args = append(fn.Args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return fn, nil
		}
		// Qualified column?
		if p.peek().kind == tokSymbol && p.peek().text == "." {
			p.advance()
			col, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil
	}
	return nil, p.errorf("unexpected %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
