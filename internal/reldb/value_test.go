package reldb

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Kind() != KindNull {
		t.Error("Null is not NULL")
	}
	v := Int(42)
	if n, ok := v.AsInt(); !ok || n != 42 {
		t.Errorf("Int(42).AsInt = %d, %v", n, ok)
	}
	if f, ok := v.AsFloat(); !ok || f != 42 {
		t.Errorf("Int(42).AsFloat = %v, %v", f, ok)
	}
	if v.AsString() != "42" {
		t.Errorf("Int(42).AsString = %q", v.AsString())
	}
	s := Str("17")
	if n, ok := s.AsInt(); !ok || n != 17 {
		t.Errorf("Str(17).AsInt = %d, %v", n, ok)
	}
	if _, ok := Str("xyz").AsInt(); ok {
		t.Error("Str(xyz).AsInt should fail")
	}
	b := Bool(true)
	if n, ok := b.AsInt(); !ok || n != 1 {
		t.Errorf("Bool(true).AsInt = %d, %v", n, ok)
	}
	if got, known := Null.AsBool(); got || known {
		t.Error("Null.AsBool should be unknown")
	}
	if got, known := Int(0).AsBool(); got || !known {
		t.Error("Int(0) should be known false")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{Int(5), "5"},
		{Float(2.5), "2.5"},
		{Str("a'b"), "'a''b'"},
		{Bool(true), "TRUE"},
		{Bool(false), "FALSE"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Int(1), Float(1.5), -1},
		{Float(2.0), Int(2), 0},
		{Str("abc"), Str("abd"), -1},
		{Str("b"), Str("b"), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		// Mixed: numeric string vs number falls back to string compare
		// only when one side is non-numeric kind; our generated queries
		// never rely on this, but it must be deterministic.
		{Str("10"), Str("9"), -1},
	}
	for _, c := range cases {
		if got := sign(Compare(c.a, c.b)); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

func TestCompareNullPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Compare with NULL should panic")
		}
	}()
	Compare(Null, Int(1))
}

func TestEncodeKeyInjective(t *testing.T) {
	// Strings containing the separator byte must not collide.
	a := encodeKey([]Value{Str("a\x00b"), Str("c")})
	b := encodeKey([]Value{Str("a"), Str("b\x00c")})
	if a == b {
		t.Error("encodeKey collision for strings containing NUL")
	}
	c := encodeKey([]Value{Str("1"), Int(1)})
	d := encodeKey([]Value{Int(1), Str("1")})
	if c == d {
		t.Error("encodeKey collision across kinds")
	}
	if encodeKey([]Value{Null}) == encodeKey([]Value{Str("")}) {
		t.Error("encodeKey collision NULL vs empty string")
	}
}

func TestEncodeKeyQuick(t *testing.T) {
	f := func(a, b string, x, y int64) bool {
		ka := encodeKey([]Value{Str(a), Int(x)})
		kb := encodeKey([]Value{Str(b), Int(y)})
		if a == b && x == y {
			return ka == kb
		}
		return ka != kb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCompareQuickAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		return sign(Compare(Int(a), Int(b))) == -sign(Compare(Int(b), Int(a)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(a, b string) bool {
		return sign(Compare(Str(a), Str(b))) == -sign(Compare(Str(b), Str(a)))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}
