package reldb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// likeRef is a straightforward recursive reference implementation of LIKE
// used to cross-check the iterative matcher.
func likeRef(s, p string) bool {
	if p == "" {
		return s == ""
	}
	switch p[0] {
	case '%':
		for i := 0; i <= len(s); i++ {
			if likeRef(s[i:], p[1:]) {
				return true
			}
		}
		return false
	case '_':
		return s != "" && likeRef(s[1:], p[1:])
	default:
		return s != "" && s[0] == p[0] && likeRef(s[1:], p[1:])
	}
}

func TestLikeQuickAgainstReference(t *testing.T) {
	alphabet := []byte("ab%_")
	gen := func(r *rand.Rand, n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[r.Intn(len(alphabet))]
		}
		return string(b)
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		s := strings.ReplaceAll(strings.ReplaceAll(gen(r, r.Intn(8)), "%", "c"), "_", "d")
		p := gen(r, r.Intn(6))
		if got, want := likeMatch(s, p), likeRef(s, p); got != want {
			t.Fatalf("likeMatch(%q,%q) = %v, reference says %v", s, p, got, want)
		}
	}
}

// TestQuickIndexScanEquivalence checks that a query returns identical
// results with and without index access paths, over randomized data.
func TestQuickIndexScanEquivalence(t *testing.T) {
	run := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		indexed := New()
		scanned := NewWithOptions(Options{DisableIndexes: true})
		ddl := []string{
			`CREATE TABLE a (id INTEGER NOT NULL, grp INTEGER, tag VARCHAR(8), PRIMARY KEY (id))`,
			`CREATE TABLE b (a_id INTEGER NOT NULL, seq INTEGER NOT NULL, val VARCHAR(8), PRIMARY KEY (a_id, seq))`,
			`CREATE INDEX ix_b ON b (a_id)`,
		}
		for _, d := range ddl {
			indexed.MustExec(d)
			scanned.MustExec(d)
		}
		tags := []string{"x", "y", "z"}
		na := 3 + r.Intn(8)
		for i := 0; i < na; i++ {
			ins := fmt.Sprintf(`INSERT INTO a VALUES (%d, %d, '%s')`, i, r.Intn(3), tags[r.Intn(3)])
			indexed.MustExec(ins)
			scanned.MustExec(ins)
			nb := r.Intn(5)
			for j := 0; j < nb; j++ {
				ins := fmt.Sprintf(`INSERT INTO b VALUES (%d, %d, '%s')`, i, j, tags[r.Intn(3)])
				indexed.MustExec(ins)
				scanned.MustExec(ins)
			}
		}
		queries := []string{
			`SELECT a.id, b.seq FROM a, b WHERE a.id = b.a_id ORDER BY a.id, b.seq`,
			`SELECT a.id FROM a WHERE EXISTS (SELECT * FROM b WHERE b.a_id = a.id AND b.val = 'x') ORDER BY a.id`,
			`SELECT a.id FROM a WHERE NOT EXISTS (SELECT * FROM b WHERE b.a_id = a.id) ORDER BY a.id`,
			`SELECT grp, COUNT(*) FROM a GROUP BY grp ORDER BY grp`,
			`SELECT a.tag, COUNT(*) FROM a, b WHERE a.id = b.a_id AND b.seq = 0 GROUP BY a.tag ORDER BY a.tag`,
		}
		for _, q := range queries {
			r1, err1 := indexed.Query(q)
			r2, err2 := scanned.Query(q)
			if (err1 == nil) != (err2 == nil) {
				t.Logf("error divergence on %q: %v vs %v", q, err1, err2)
				return false
			}
			if err1 != nil {
				continue
			}
			if dump(r1) != dump(r2) {
				t.Logf("result divergence on %q:\n%s\nvs\n%s", q, dump(r1), dump(r2))
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(seed int64) bool { return run(seed) }, cfg); err != nil {
		t.Error(err)
	}
}

func dump(r *Rows) string {
	var b strings.Builder
	for _, row := range r.Data {
		for _, v := range row {
			b.WriteString(v.String())
			b.WriteByte(',')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestQuickInsertLookup checks that any inserted (k1,k2) composite key is
// found again via the primary-key index and that absent keys are not.
func TestQuickInsertLookup(t *testing.T) {
	db := New()
	db.MustExec(`CREATE TABLE kv (k1 INTEGER NOT NULL, k2 VARCHAR(16) NOT NULL, v INTEGER, PRIMARY KEY (k1, k2))`)
	inserted := map[string]bool{}
	f := func(k1 uint8, k2raw uint8, v int64) bool {
		k2 := fmt.Sprintf("key%d", k2raw%16)
		key := fmt.Sprintf("%d|%s", k1%16, k2)
		if inserted[key] {
			// Duplicate insert must fail and leave data intact.
			_, err := db.Exec(`INSERT INTO kv VALUES (?, ?, ?)`, Int(int64(k1%16)), Str(k2), Int(v))
			return err != nil
		}
		if _, err := db.Exec(`INSERT INTO kv VALUES (?, ?, ?)`, Int(int64(k1%16)), Str(k2), Int(v)); err != nil {
			return false
		}
		inserted[key] = true
		rows, err := db.Query(`SELECT v FROM kv WHERE kv.k1 = ? AND kv.k2 = ?`, Int(int64(k1%16)), Str(k2))
		if err != nil || len(rows.Data) != 1 {
			return false
		}
		got, _ := rows.Data[0][0].AsInt()
		return got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
