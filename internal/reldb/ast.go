package reldb

// This file defines the abstract syntax tree for the SQL subset. Nodes are
// plain structs; the executor interprets them directly (there is no separate
// physical plan — access-path selection happens in the executor when a FROM
// item is bound, see exec.go).

// Statement is any parsed SQL statement.
type Statement interface{ isStatement() }

// Expr is any scalar or boolean expression.
type Expr interface{ isExpr() }

// --- Statements ---

// SelectStmt is a SELECT query (possibly nested as a subquery).
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem // empty means SELECT *
	Star     bool
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 means no limit
}

func (*SelectStmt) isStatement() {}

// SelectItem is one output expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// FromItem is a table reference or a derived table, with an optional alias.
type FromItem struct {
	Table    string      // table name, when not a derived table
	Subquery *SelectStmt // derived table, when Table == ""
	Alias    string
}

// Name returns the binding name of the FROM item (alias or table name).
func (f FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Table
}

// InsertStmt is INSERT INTO t [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

func (*InsertStmt) isStatement() {}

// UpdateStmt is UPDATE t SET c = e, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Set   []SetClause
	Where Expr
}

func (*UpdateStmt) isStatement() {}

// SetClause is a single column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t [WHERE ...].
type DeleteStmt struct {
	Table string
	Where Expr
}

func (*DeleteStmt) isStatement() {}

// CreateTableStmt is CREATE TABLE t (cols..., PRIMARY KEY (...)).
type CreateTableStmt struct {
	Table      string
	Columns    []Column
	PrimaryKey []string
}

func (*CreateTableStmt) isStatement() {}

// CreateIndexStmt is CREATE [UNIQUE] INDEX name ON t (cols).
type CreateIndexStmt struct {
	Name    string
	Table   string
	Columns []string
	Unique  bool
}

func (*CreateIndexStmt) isStatement() {}

// DropTableStmt is DROP TABLE t.
type DropTableStmt struct {
	Table string
}

func (*DropTableStmt) isStatement() {}

// --- Expressions ---

// Literal is a constant value.
type Literal struct{ Value Value }

func (*Literal) isExpr() {}

// ColumnRef references a column, optionally qualified by a table or alias.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

func (*ColumnRef) isExpr() {}

// Param is a positional parameter '?', bound at execution time.
type Param struct{ Index int }

func (*Param) isExpr() {}

// BinaryExpr applies a binary operator. Op is one of:
// "OR" "AND" "=" "<>" "<" "<=" ">" ">=" "+" "-" "*" "/" "||" "LIKE".
type BinaryExpr struct {
	Op    string
	Left  Expr
	Right Expr
}

func (*BinaryExpr) isExpr() {}

// UnaryExpr applies "NOT" or "-" to an operand.
type UnaryExpr struct {
	Op      string
	Operand Expr
}

func (*UnaryExpr) isExpr() {}

// IsNullExpr is "expr IS [NOT] NULL".
type IsNullExpr struct {
	Operand Expr
	Negated bool
}

func (*IsNullExpr) isExpr() {}

// InExpr is "expr [NOT] IN (list)" or "expr [NOT] IN (subquery)".
type InExpr struct {
	Operand  Expr
	List     []Expr
	Subquery *SelectStmt
	Negated  bool
}

func (*InExpr) isExpr() {}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Subquery *SelectStmt
	Negated  bool
}

func (*ExistsExpr) isExpr() {}

// SubqueryExpr is a scalar subquery "(SELECT ...)" used as a value.
type SubqueryExpr struct{ Subquery *SelectStmt }

func (*SubqueryExpr) isExpr() {}

// FuncExpr is a function call. Star marks COUNT(*); Distinct marks
// aggregates over distinct argument values, e.g. COUNT(DISTINCT ref).
type FuncExpr struct {
	Name     string // uppercased
	Args     []Expr
	Star     bool
	Distinct bool
}

func (*FuncExpr) isExpr() {}

// CaseExpr is a searched CASE expression.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

func (*CaseExpr) isExpr() {}

// CaseWhen is one WHEN/THEN branch of a CASE expression.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// aggregateFuncs are functions computed over groups rather than rows.
var aggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// hasAggregate reports whether the expression tree contains an aggregate
// function call (not descending into subqueries, which aggregate over their
// own groups).
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *FuncExpr:
		if aggregateFuncs[x.Name] {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
	case *BinaryExpr:
		return hasAggregate(x.Left) || hasAggregate(x.Right)
	case *UnaryExpr:
		return hasAggregate(x.Operand)
	case *IsNullExpr:
		return hasAggregate(x.Operand)
	case *InExpr:
		if hasAggregate(x.Operand) {
			return true
		}
		for _, l := range x.List {
			if hasAggregate(l) {
				return true
			}
		}
	case *CaseExpr:
		for _, w := range x.Whens {
			if hasAggregate(w.Cond) || hasAggregate(w.Then) {
				return true
			}
		}
		return hasAggregate(x.Else)
	}
	return false
}
