package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p3pdb/internal/durable"
	"p3pdb/internal/registry"
	"p3pdb/internal/replica"
	"p3pdb/internal/server"
)

func polDoc(name string) string {
	return fmt.Sprintf(`<POLICY name=%q><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`, name)
}

func refDocFor(names ...string) string {
	var b strings.Builder
	b.WriteString(`<META><POLICY-REFERENCES>`)
	for _, n := range names {
		fmt.Fprintf(&b, `<POLICY-REF about="#%s"><INCLUDE>/%s/*</INCLUDE></POLICY-REF>`, n, n)
	}
	b.WriteString(`</POLICY-REFERENCES></META>`)
	return b.String()
}

// newFleet stands up a seeded durable leader, one caught-up follower,
// and a probed router over both.
func newFleet(t *testing.T) (reg *registry.Registry, leader *httptest.Server, node *replica.Node, follower *httptest.Server, rt *Router, front *httptest.Server) {
	t.Helper()
	store, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err = registry.New(registry.Options{Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	leader = httptest.NewServer(server.NewMulti(reg))
	t.Cleanup(func() { leader.Close(); reg.Close() })
	if err := server.NewClient(leader.URL).CreateSite("a.example"); err != nil {
		t.Fatal(err)
	}
	c := server.NewClient(leader.URL + "/sites/a.example")
	for _, p := range []string{"p1", "p2"} {
		if _, err := c.InstallPolicies(polDoc(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.InstallReferenceFile(refDocFor("p1", "p2")); err != nil {
		t.Fatal(err)
	}

	node, err = replica.New(replica.Options{Leader: leader.URL, Tenants: []string{"a.example"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Stop)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := node.Sync(ctx); err != nil {
		t.Fatal(err)
	}
	follower = httptest.NewServer(node)
	t.Cleanup(follower.Close)

	rt, err = New(Options{Leader: leader.URL, Replicas: []string{follower.URL}})
	if err != nil {
		t.Fatal(err)
	}
	rt.Probe()
	front = httptest.NewServer(rt)
	t.Cleanup(front.Close)
	return reg, leader, node, follower, rt, front
}

// checkVia asks the router for one decision and returns status and the
// allowed verdict (only meaningful on 200).
func checkVia(t *testing.T, front string) (int, bool) {
	t.Helper()
	resp, err := http.Get(front + "/sites/a.example/check?url=/p1/index.html&level=mild")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, false
	}
	var v struct {
		Allowed bool `json:"allowed"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("check body: %v\n%s", err, body)
	}
	return resp.StatusCode, v.Allowed
}

// TestClassify pins the read/write split the router routes by.
func TestClassify(t *testing.T) {
	cases := []struct {
		method, path string
		tenant       string
		read         bool
	}{
		{http.MethodGet, "/sites/a.example/policies", "a.example", true},
		{http.MethodPost, "/sites/a.example/policies", "a.example", false},
		{http.MethodPost, "/sites/a.example/match", "a.example", true},
		{http.MethodPost, "/sites/a.example/matchall", "a.example", true},
		{http.MethodPost, "/sites/a.example/check", "a.example", true},
		{http.MethodGet, "/sites/a.example/check", "a.example", true},
		{http.MethodPost, "/sites/a.example/reference", "a.example", false},
		{http.MethodDelete, "/sites/a.example/policies/p1", "a.example", false},
		{http.MethodPut, "/sites/b.example", "b.example", false},
		{http.MethodDelete, "/sites/b.example", "b.example", false},
		{http.MethodGet, "/sites", "", true},
		{http.MethodGet, "/sites/a.example/wal", "a.example", true},
		// Bare paths resolve the tenant from the Host header; httptest
		// defaults it to example.com.
		{http.MethodGet, "/metrics", "example.com", true},
	}
	for _, c := range cases {
		r := httptest.NewRequest(c.method, c.path, nil)
		tenant, _, read := classify(r)
		if tenant != c.tenant || read != c.read {
			t.Errorf("%s %s: got (%q, read=%v), want (%q, read=%v)",
				c.method, c.path, tenant, read, c.tenant, c.read)
		}
	}

	// Host routing: bare paths resolve the tenant from the Host header.
	r := httptest.NewRequest(http.MethodPost, "/match", nil)
	r.Host = "A.Example:443"
	tenant, _, read := classify(r)
	if tenant != "a.example" || !read {
		t.Errorf("host routing: got (%q, read=%v)", tenant, read)
	}
}

// TestFailover kills the leader mid-load: reads may briefly 5xx while
// the router notices, but every non-5xx decision must match the
// pre-failure verdict — zero decision flips — and end up served by the
// caught-up follower. Writes refuse with a typed 503.
func TestFailover(t *testing.T) {
	_, leader, _, _, rt, front := newFleet(t)

	status, baseline := checkVia(t, front.URL)
	if status != http.StatusOK {
		t.Fatalf("baseline check: %d", status)
	}

	leader.Close()
	sawRecovery := false
	for i := 0; i < 50; i++ {
		status, allowed := checkVia(t, front.URL)
		switch {
		case status >= 500:
			// The router is allowed a 5xx while it learns; help it along.
			rt.Probe()
		case status == http.StatusOK:
			if allowed != baseline {
				t.Fatalf("request %d: decision flipped from %v to %v", i, baseline, allowed)
			}
			sawRecovery = true
		default:
			t.Fatalf("request %d: unexpected status %d", i, status)
		}
	}
	if !sawRecovery {
		t.Fatal("reads never drained onto the follower")
	}

	// Writes cannot fail over: the leader is the only journal. A probe
	// round (the ticker's job in production) marks the leader down.
	rt.Probe()
	resp, err := http.Post(front.URL+"/sites/a.example/policies", "application/xml", strings.NewReader(polDoc("p9")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "leader-unavailable") {
		t.Fatalf("write after leader death: %d %s", resp.StatusCode, body)
	}

	if st := rt.Status(); len(st) != 2 {
		t.Fatalf("router status: %+v", st)
	}
}

// TestLagGateKeepsStaleFollowerOut writes past a stopped follower: the
// router must route reads to the leader while the follower lags, and
// once the leader dies the stale follower must stay out of rotation
// (503, not stale data).
func TestLagGateKeepsStaleFollowerOut(t *testing.T) {
	_, leader, _, _, rt, front := newFleet(t)

	// Advance the leader past the follower's applied LSN.
	c := server.NewClient(leader.URL + "/sites/a.example")
	if _, err := c.InstallPolicies(polDoc("p3")); err != nil {
		t.Fatal(err)
	}
	rt.Probe()

	// Reads must come from the leader: the response set includes p3,
	// which only the leader has.
	for i := 0; i < 10; i++ {
		resp, err := http.Get(front.URL + "/sites/a.example/policies")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "p3") {
			t.Fatalf("read %d served stale data: %d %s", i, resp.StatusCode, body)
		}
	}

	// Leader dies with the follower still behind: its last LSN map is
	// frozen, the follower does not clear it, reads refuse rather than
	// serve stale decisions.
	leader.Close()
	rt.Probe()
	resp, err := http.Get(front.URL + "/sites/a.example/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "no-backend") {
		t.Fatalf("stale follower entered rotation: %d %s", resp.StatusCode, body)
	}
}

// TestRouterEndpoints covers the router's own health and status faces.
func TestRouterEndpoints(t *testing.T) {
	_, _, _, _, _, front := newFleet(t)
	for _, path := range []string{"/router/healthz", "/router/readyz", "/router/status"} {
		resp, err := http.Get(front.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}
	var st []BackendStatus
	resp, err := http.Get(front.URL + "/router/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 || st[0].Role != "leader" || st[1].Role != "replica" {
		t.Fatalf("router status shape: %+v", st)
	}
	if !st[0].Healthy || !st[1].Healthy {
		t.Fatalf("backends unhealthy after probe: %+v", st)
	}
}

// TestProbeLoopAndServer exercises the background probe loop and the
// ListenAndServe wrapper.
func TestProbeLoopAndServer(t *testing.T) {
	_, leader, _, follower, _, _ := newFleet(t)
	rt2, err := New(Options{Leader: leader.URL, Replicas: []string{follower.URL}, ProbeInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt2.Start()
	defer rt2.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := rt2.Status()
		if len(st) == 2 && st[0].Healthy && st[1].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("probe loop never marked backends healthy: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv := rt2.HTTPServer(":0"); srv.Handler == nil || srv.Addr != ":0" {
		t.Fatalf("HTTPServer wrapper wrong: %+v", srv)
	}
}
