// Package router fronts a replicated p3pdb deployment (DESIGN.md §12):
// one leader taking writes plus any number of read-only followers
// tailing its WAL. Requests are classified as reads or writes by
// endpoint; writes always go to the leader, reads are spread across
// caught-up backends by rendezvous (highest-random-weight) hashing of
// the tenant name with a bounded-load cap, so one hot tenant cannot
// pile all its traffic on a single node while cold tenants still get
// stable placement (and therefore warm decision caches).
//
// Health is probed two ways: /readyz decides whether a backend takes
// traffic at all, and /replication/status yields per-tenant LSNs used
// to keep lagging followers out of rotation. The leader's LSN map is
// frozen when the leader stops answering, so failover only drains onto
// followers that had caught up to the last position the leader
// reported — a follower that was already behind stays out.
package router

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"p3pdb/internal/obs"
	"p3pdb/internal/registry"
	"p3pdb/internal/server"
)

// Router observability, surfaced on the router's /metrics as router.*.
var (
	obsRouted      = obs.GetCounter("router.requests_routed")
	obsWrites      = obs.GetCounter("router.writes_to_leader")
	obsFailovers   = obs.GetCounter("router.leader_unavailable")
	obsNoBackend   = obs.GetCounter("router.no_backend")
	obsProbeRounds = obs.GetCounter("router.probe_rounds")
	obsEligible    = obs.GetGauge("router.eligible_backends")
)

// Options configures a Router.
type Options struct {
	// Leader is the base URL of the write leader (required).
	Leader string
	// Replicas are base URLs of read-only followers.
	Replicas []string
	// ProbeInterval is how often Start's loop re-probes backends
	// (default 500ms).
	ProbeInterval time.Duration
	// MaxLag is the most records a follower may trail the leader's last
	// known LSN and still serve a tenant's reads (default 0: followers
	// must be fully caught up).
	MaxLag uint64
	// BoundFactor caps per-backend load at BoundFactor times the mean
	// in-flight requests across eligible backends (default 1.25, the
	// classic bounded-load constant).
	BoundFactor float64
	// Client probes backends (default: 2s-timeout client).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 500 * time.Millisecond
	}
	if o.BoundFactor <= 1 {
		o.BoundFactor = 1.25
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 2 * time.Second}
	}
	return o
}

// backend is one upstream node: the leader or a follower.
type backend struct {
	rawURL string
	leader bool
	proxy  *httputil.ReverseProxy

	healthy  atomic.Bool
	inflight atomic.Int64
	served   atomic.Int64
	errored  atomic.Int64

	mu   sync.Mutex
	lsns map[string]uint64 // tenant -> LSN last reported by this backend
}

// lsnFor returns the backend's last reported LSN for a tenant.
func (b *backend) lsnFor(tenant string) (uint64, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	lsn, ok := b.lsns[tenant]
	return lsn, ok
}

// Router is the http.Handler fronting the fleet.
type Router struct {
	opts     Options
	leader   *backend
	backends []*backend // leader first, then replicas

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a Router; call Probe (or Start) before serving so backends
// have a known health state.
func New(opts Options) (*Router, error) {
	opts = opts.withDefaults()
	if opts.Leader == "" {
		return nil, fmt.Errorf("router: leader URL required")
	}
	rt := &Router{opts: opts}
	rt.ctx, rt.cancel = context.WithCancel(context.Background())
	lb, err := rt.newBackend(opts.Leader, true)
	if err != nil {
		return nil, err
	}
	rt.leader = lb
	rt.backends = append(rt.backends, lb)
	for _, raw := range opts.Replicas {
		fb, err := rt.newBackend(raw, false)
		if err != nil {
			return nil, err
		}
		rt.backends = append(rt.backends, fb)
	}
	return rt, nil
}

func (rt *Router) newBackend(raw string, leader bool) (*backend, error) {
	u, err := url.Parse(raw)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("router: bad backend URL %q", raw)
	}
	b := &backend{rawURL: strings.TrimRight(raw, "/"), leader: leader, lsns: map[string]uint64{}}
	b.proxy = httputil.NewSingleHostReverseProxy(u)
	b.proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		// A refused or mid-flight-dropped connection marks the backend
		// down immediately rather than waiting for the next probe.
		b.healthy.Store(false)
		b.errored.Add(1)
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error":  fmt.Sprintf("backend %s unreachable: %v", b.rawURL, err),
			"reason": "backend-unreachable",
		})
	}
	return b, nil
}

// Probe refreshes every backend's health and LSN map once,
// synchronously. Start runs it on a loop; tests call it directly for
// deterministic state.
func (rt *Router) Probe() {
	obsProbeRounds.Inc()
	for _, b := range rt.backends {
		rt.probeBackend(b)
	}
	obsEligible.Set(int64(rt.countEligible()))
}

func (rt *Router) probeBackend(b *backend) {
	resp, err := rt.opts.Client.Get(b.rawURL + "/readyz")
	if err != nil {
		b.healthy.Store(false)
		return
	}
	resp.Body.Close()
	b.healthy.Store(resp.StatusCode < 300)

	// LSNs refresh best-effort and freeze on failure: a dead leader's
	// last map is exactly the bar failover candidates must clear.
	resp, err = rt.opts.Client.Get(b.rawURL + "/replication/status")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var st server.ReplicationStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return
	}
	b.mu.Lock()
	for name, ts := range st.Tenants {
		b.lsns[name] = ts.LSN
	}
	b.mu.Unlock()
}

// eligible reports whether a backend may serve reads for a tenant: the
// leader needs only health, a follower must also have caught up to the
// leader's last known LSN within MaxLag. An unknown tenant (no LSN
// reported by either side) rides on health alone — there is nothing to
// lag behind.
func (rt *Router) eligible(b *backend, tenant string) bool {
	if !b.healthy.Load() {
		return false
	}
	if b.leader || tenant == "" {
		return true
	}
	want, ok := rt.leader.lsnFor(tenant)
	if !ok {
		return true
	}
	have, ok := b.lsnFor(tenant)
	if !ok {
		return want <= rt.opts.MaxLag
	}
	return have+rt.opts.MaxLag >= want
}

func (rt *Router) countEligible() int {
	n := 0
	for _, b := range rt.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

// rendezvous scores a backend for a tenant: fnv64a(tenant NUL url).
func rendezvous(tenant, url string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(url))
	return h.Sum64()
}

// pick chooses the read backend for a tenant: eligible backends in
// rendezvous order, first one under the bounded-load cap, falling back
// to the top-ranked one when all are saturated.
func (rt *Router) pick(tenant string) *backend {
	var eligible []*backend
	var total int64
	for _, b := range rt.backends {
		if rt.eligible(b, tenant) {
			eligible = append(eligible, b)
			total += b.inflight.Load()
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	sort.Slice(eligible, func(i, j int) bool {
		return rendezvous(tenant, eligible[i].rawURL) > rendezvous(tenant, eligible[j].rawURL)
	})
	cap := int64(math.Ceil(rt.opts.BoundFactor * float64(total+1) / float64(len(eligible))))
	for _, b := range eligible {
		if b.inflight.Load() < cap {
			return b
		}
	}
	return eligible[0]
}

// readEndpoints are tenant API endpoints that never mutate state even
// under POST (the matching endpoints accept POST bodies).
var readEndpoints = map[string]bool{
	"match": true, "matchall": true, "matchpolicy": true, "matchcookie": true,
	"check": true, "compact": true, "analytics": true, "durability": true,
	"wal": true, "replication": true,
	"metrics": true, "healthz": true, "readyz": true, "debug": true,
}

// classify splits a request into (tenant, endpoint, isRead).
func classify(r *http.Request) (tenant, endpoint string, read bool) {
	path := r.URL.Path
	if path == "/sites" || path == "/sites/" {
		// Tenant admin listing/creation: leader territory.
		return "", "sites", r.Method == http.MethodGet || r.Method == http.MethodHead
	}
	if rest, ok := strings.CutPrefix(path, "/sites/"); ok {
		name, sub, nested := strings.Cut(rest, "/")
		if !nested {
			// PUT/DELETE/POST /sites/{name} are tenant admin writes.
			return name, "sites", r.Method == http.MethodGet || r.Method == http.MethodHead
		}
		endpoint, _, _ = strings.Cut(sub, "/")
		tenant = name
	} else {
		endpoint, _, _ = strings.Cut(strings.TrimPrefix(path, "/"), "/")
		if norm, err := registry.Normalize(r.Host); err == nil {
			tenant = norm
		}
	}
	if readEndpoints[endpoint] {
		return tenant, endpoint, true
	}
	return tenant, endpoint, r.Method == http.MethodGet || r.Method == http.MethodHead
}

// ServeHTTP routes one request.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/router/healthz":
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	case "/router/readyz":
		if rt.countEligible() == 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not-ready", "reason": "no-backend"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
		return
	case "/router/status":
		writeJSON(w, http.StatusOK, rt.Status())
		return
	}

	tenant, _, read := classify(r)
	var b *backend
	if read {
		b = rt.pick(tenant)
		if b == nil {
			obsNoBackend.Inc()
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error": "no healthy caught-up backend", "reason": "no-backend",
			})
			return
		}
	} else {
		obsWrites.Inc()
		if !rt.leader.healthy.Load() {
			obsFailovers.Inc()
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{
				"error": "leader unavailable; writes cannot fail over", "reason": "leader-unavailable",
			})
			return
		}
		b = rt.leader
	}
	obsRouted.Inc()
	b.inflight.Add(1)
	b.served.Add(1)
	defer b.inflight.Add(-1)
	b.proxy.ServeHTTP(w, r)
}

// BackendStatus is one backend's entry in GET /router/status.
type BackendStatus struct {
	URL      string            `json:"url"`
	Role     string            `json:"role"`
	Healthy  bool              `json:"healthy"`
	Inflight int64             `json:"inflight"`
	Served   int64             `json:"served"`
	Errors   int64             `json:"errors"`
	LSNs     map[string]uint64 `json:"lsns,omitempty"`
}

// Status snapshots every backend for GET /router/status.
func (rt *Router) Status() []BackendStatus {
	out := make([]BackendStatus, 0, len(rt.backends))
	for _, b := range rt.backends {
		role := "replica"
		if b.leader {
			role = "leader"
		}
		b.mu.Lock()
		lsns := make(map[string]uint64, len(b.lsns))
		for k, v := range b.lsns {
			lsns[k] = v
		}
		b.mu.Unlock()
		out = append(out, BackendStatus{
			URL:      b.rawURL,
			Role:     role,
			Healthy:  b.healthy.Load(),
			Inflight: b.inflight.Load(),
			Served:   b.served.Load(),
			Errors:   b.errored.Load(),
			LSNs:     lsns,
		})
	}
	return out
}

// Start probes once synchronously, then keeps probing on
// ProbeInterval until Stop.
func (rt *Router) Start() {
	rt.Probe()
	rt.wg.Add(1)
	go func() {
		defer rt.wg.Done()
		tick := time.NewTicker(rt.opts.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-rt.ctx.Done():
				return
			case <-tick.C:
				rt.Probe()
			}
		}
	}()
}

// Stop ends the probe loop.
func (rt *Router) Stop() {
	rt.cancel()
	rt.wg.Wait()
}

// HTTPServer wraps the router for ListenAndServe.
func (rt *Router) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
