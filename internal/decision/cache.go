// Package decision is the read path's terminal cache: a lock-free,
// bounded map from (preference text, policy, engine, site-snapshot
// generation) to the match outcome. A site's policy set changes rarely
// while millions of users re-present the same few thousand distinct
// preferences, so in steady state almost every match is a repeat — the
// FGAC scalable-enforcement observation applied to P3P. A hit skips the
// engines entirely: no APPEL parse, no SQL/XQuery evaluation, just one
// hash and a handful of atomic loads.
//
// Invalidation rides the snapshot swap for free. The cache key embeds
// the generation number core assigns each published site snapshot;
// installing, removing, or replacing policies publishes a new snapshot
// with a new generation, so every entry cached against the old snapshot
// simply stops matching. Stale entries are never served — they linger in
// their slots until overwritten, which bounds memory without any purge
// pass or writer coordination.
//
// Concurrency: the cache is an open-addressed table of atomic entry
// pointers. Get is a bounded probe of atomic loads; Put publishes an
// immutable entry with one atomic store. Neither takes a lock, so
// readers never serialize against each other or against writers — the
// property the single-mutex conversion cache could not give the
// multi-core read path. Races lose at most a cache fill, never
// correctness: every served entry's key is compared in full (the whole
// preference text, not a hash), so collisions cannot alias.
package decision

import (
	"hash/maphash"
	"sync/atomic"

	"p3pdb/internal/obs"
)

// DefaultSlots bounds the cache when the caller leaves the size unset.
// At one entry per distinct (preference, policy, engine) triple this
// comfortably holds the few thousand distinct preferences a site sees,
// while capping worst-case memory at slots * (entry + preference text).
const DefaultSlots = 4096

// probeWindow is how many consecutive slots a key may occupy. Small
// enough that a Get is a handful of loads, large enough that hash
// clustering rarely evicts a live entry.
const probeWindow = 8

// Process-wide observability (obs registry, DESIGN.md §8). Per-cache
// numbers stay available via Stats.
var (
	obsHits       = obs.GetCounter("decision.hits")
	obsMisses     = obs.GetCounter("decision.misses")
	obsStores     = obs.GetCounter("decision.stores")
	obsOverwrites = obs.GetCounter("decision.overwrites")
	obsPreseeds   = obs.GetCounter("decision.preseeds")
)

// Key identifies one cached decision. Gen is the site-snapshot
// generation the decision was computed against; a snapshot swap changes
// Gen, so old entries can never be served afterwards. Pref is the full
// preference text — lookups compare it verbatim, making hash collisions
// harmless.
type Key struct {
	Gen    uint64
	Engine uint8
	Policy string
	Pref   string
}

// Outcome is the engine-independent payload of a cached decision.
type Outcome struct {
	Behavior        string
	RuleIndex       int
	RuleDescription string
	Prompt          bool
}

// entry pairs a key with its outcome. Entries are immutable after
// publication; replacement stores a fresh entry pointer.
type entry struct {
	key Key
	out Outcome
}

// Cache is the lock-free decision cache. The zero value is not usable;
// construct with New.
type Cache struct {
	slots []atomic.Pointer[entry]
	mask  uint64
	seed  maphash.Seed
	// victim rotates the overwrite slot when a probe window is full of
	// live entries, so pathological clustering degrades to round-robin
	// replacement instead of pinning one slot.
	victim atomic.Uint64

	hits     atomic.Int64
	misses   atomic.Int64
	stores   atomic.Int64
	preseeds atomic.Int64
}

// New returns a cache with at least the given number of slots, rounded
// up to a power of two. size <= 0 selects DefaultSlots.
func New(size int) *Cache {
	if size <= 0 {
		size = DefaultSlots
	}
	n := 1
	for n < size {
		n <<= 1
	}
	if n < probeWindow {
		n = probeWindow
	}
	return &Cache{
		slots: make([]atomic.Pointer[entry], n),
		mask:  uint64(n - 1),
		seed:  maphash.MakeSeed(),
	}
}

// hash mixes every key field, so one preference matched against many
// policies (or engines, or snapshot generations) spreads across the
// table.
func (c *Cache) hash(k Key) uint64 {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.Pref)
	h.WriteString(k.Policy)
	h.WriteByte(k.Engine)
	var g [8]byte
	for i := 0; i < 8; i++ {
		g[i] = byte(k.Gen >> (8 * i))
	}
	h.Write(g[:])
	return h.Sum64()
}

// Get looks the key up. It is wait-free: at most probeWindow atomic
// loads and full-key compares.
func (c *Cache) Get(k Key) (Outcome, bool) {
	h := c.hash(k)
	for i := uint64(0); i < probeWindow; i++ {
		e := c.slots[(h+i)&c.mask].Load()
		if e != nil && e.key == k {
			c.hits.Add(1)
			obsHits.Inc()
			return e.out, true
		}
	}
	c.misses.Add(1)
	obsMisses.Inc()
	return Outcome{}, false
}

// Put publishes the outcome for the key. Slot choice inside the probe
// window prefers, in order: the key's own slot (refresh), an empty
// slot, a stale slot (an entry from an older snapshot generation, dead
// weight by construction), and finally a rotating victim — the cache is
// bounded, so something must go. A racing Put to the same slot loses at
// most one fill; entries are immutable, so readers always see a
// complete one.
func (c *Cache) Put(k Key, o Outcome) {
	e := &entry{key: k, out: o}
	h := c.hash(k)
	empty, stale := -1, -1
	for i := uint64(0); i < probeWindow; i++ {
		idx := int((h + i) & c.mask)
		cur := c.slots[idx].Load()
		switch {
		case cur == nil:
			if empty < 0 {
				empty = idx
			}
		case cur.key == k:
			c.slots[idx].Store(e)
			c.stores.Add(1)
			obsStores.Inc()
			return
		case cur.key.Gen < k.Gen && stale < 0:
			stale = idx
		}
	}
	idx := empty
	if idx < 0 {
		idx = stale
	}
	if idx < 0 {
		idx = int((h + c.victim.Add(1)%probeWindow) & c.mask)
		obsOverwrites.Inc()
	}
	c.slots[idx].Store(e)
	c.stores.Add(1)
	obsStores.Inc()
}

// Peek looks the key up without touching the hit/miss counters. The
// pre-warm pass uses it to detect carried-forward entries: a Peek is
// bookkeeping, not a visitor lookup, so it must not distort the warm-hit
// metric the bench gate enforces.
func (c *Cache) Peek(k Key) (Outcome, bool) {
	h := c.hash(k)
	for i := uint64(0); i < probeWindow; i++ {
		e := c.slots[(h+i)&c.mask].Load()
		if e != nil && e.key == k {
			return e.out, true
		}
	}
	return Outcome{}, false
}

// Preseed publishes a decision computed ahead of a snapshot swap, keyed
// by the not-yet-published generation. Mechanically a Put; accounted
// separately so the warm-rate metric can tell pre-warm stores from
// organic fills.
func (c *Cache) Preseed(k Key, o Outcome) {
	c.Put(k, o)
	c.preseeds.Add(1)
	obsPreseeds.Inc()
}

// Entry is one live (key, outcome) pair, as returned by EntriesAt.
type Entry struct {
	Key Key
	Out Outcome
}

// EntriesAt scans every slot and returns the live entries cached against
// the given generation. The pre-warm pass uses it to carry decisions
// whose policy text is unchanged forward across a swap. A full scan, but
// it runs under the writer mutex on the cold publication path.
func (c *Cache) EntriesAt(gen uint64) []Entry {
	var out []Entry
	for i := range c.slots {
		if e := c.slots[i].Load(); e != nil && e.key.Gen == gen {
			out = append(out, Entry{Key: e.key, Out: e.out})
		}
	}
	return out
}

// Preseeds reports how many decisions were pre-warmed into this cache.
func (c *Cache) Preseeds() int64 { return c.preseeds.Load() }

// Len counts live entries, scanning every slot. For tests and metrics;
// not on any hot path.
func (c *Cache) Len() int {
	n := 0
	for i := range c.slots {
		if c.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Slots reports the table's capacity in entries.
func (c *Cache) Slots() int { return len(c.slots) }

// Stats reports this cache's hit, miss, and store counters.
func (c *Cache) Stats() (hits, misses, stores int64) {
	return c.hits.Load(), c.misses.Load(), c.stores.Load()
}
