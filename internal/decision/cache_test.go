package decision

import (
	"fmt"
	"sync"
	"testing"
)

func key(gen uint64, pref, policy string) Key {
	return Key{Gen: gen, Engine: 1, Policy: policy, Pref: pref}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(64)
	k := key(1, "<ruleset/>", "volga")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	want := Outcome{Behavior: "request", RuleIndex: 2, RuleDescription: "ok", Prompt: true}
	c.Put(k, want)
	got, ok := c.Get(k)
	if !ok || got != want {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, want)
	}

	// Same preference under a different generation, policy, or engine is
	// a distinct key.
	if _, ok := c.Get(key(2, "<ruleset/>", "volga")); ok {
		t.Error("stale generation served")
	}
	if _, ok := c.Get(key(1, "<ruleset/>", "other")); ok {
		t.Error("wrong policy served")
	}
	k2 := k
	k2.Engine = 3
	if _, ok := c.Get(k2); ok {
		t.Error("wrong engine served")
	}
}

func TestPutRefreshesInPlace(t *testing.T) {
	c := New(64)
	k := key(1, "p", "pol")
	c.Put(k, Outcome{Behavior: "request"})
	c.Put(k, Outcome{Behavior: "block"})
	got, ok := c.Get(k)
	if !ok || got.Behavior != "block" {
		t.Fatalf("got %+v ok=%v, want refreshed block", got, ok)
	}
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d after double put of one key, want 1", n)
	}
}

func TestBoundedAndSizedUp(t *testing.T) {
	c := New(100)
	if c.Slots() != 128 {
		t.Fatalf("Slots = %d, want next power of two 128", c.Slots())
	}
	for i := 0; i < 10*c.Slots(); i++ {
		c.Put(key(1, fmt.Sprintf("pref-%d", i), "pol"), Outcome{Behavior: "request"})
	}
	if n := c.Len(); n > c.Slots() {
		t.Fatalf("Len = %d exceeds %d slots", n, c.Slots())
	}
}

func TestStaleGenerationsAreEvictionVictims(t *testing.T) {
	c := New(probeWindow) // single probe window: every key collides
	for i := 0; i < probeWindow; i++ {
		c.Put(key(1, fmt.Sprintf("old-%d", i), "pol"), Outcome{Behavior: "request"})
	}
	// A new-generation put with a full table must land somewhere and
	// still be retrievable, displacing a stale entry rather than being
	// dropped.
	k := key(2, "fresh", "pol")
	c.Put(k, Outcome{Behavior: "block"})
	if got, ok := c.Get(k); !ok || got.Behavior != "block" {
		t.Fatalf("fresh entry not stored over stale generation: %+v ok=%v", got, ok)
	}
}

func TestStatsCount(t *testing.T) {
	c := New(64)
	k := key(1, "p", "pol")
	c.Get(k)
	c.Put(k, Outcome{Behavior: "request"})
	c.Get(k)
	c.Get(k)
	hits, misses, stores := c.Stats()
	if hits != 2 || misses != 1 || stores != 1 {
		t.Fatalf("stats = %d/%d/%d, want 2 hits, 1 miss, 1 store", hits, misses, stores)
	}
}

// TestConcurrentHammering races readers and writers over a small table
// (run with -race). Entries are immutable, so any served outcome must be
// exactly what some Put published for that full key.
func TestConcurrentHammering(t *testing.T) {
	c := New(256)
	const goroutines = 8
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				gen := uint64(1 + i%3)
				k := key(gen, fmt.Sprintf("pref-%d", i%50), fmt.Sprintf("pol-%d", g%4))
				want := fmt.Sprintf("b-%d-%s-%s", k.Gen, k.Pref, k.Policy)
				if i%2 == 0 {
					c.Put(k, Outcome{Behavior: want})
					continue
				}
				if out, ok := c.Get(k); ok && out.Behavior != want {
					t.Errorf("key %+v served foreign outcome %q", k, out.Behavior)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := c.Len(); n > c.Slots() {
		t.Fatalf("Len = %d exceeds %d slots", n, c.Slots())
	}
}

func TestPeekDoesNotTouchCounters(t *testing.T) {
	c := New(64)
	k := key(1, "<ruleset/>", "peek")
	if _, ok := c.Peek(k); ok {
		t.Fatal("peek hit on empty cache")
	}
	c.Put(k, Outcome{Behavior: "block"})
	out, ok := c.Peek(k)
	if !ok || out.Behavior != "block" {
		t.Fatalf("peek = %+v, %v", out, ok)
	}
	hits, misses, _ := c.Stats()
	if hits != 0 || misses != 0 {
		t.Fatalf("peek moved counters: hits=%d misses=%d", hits, misses)
	}
}

func TestPreseedAccountsSeparately(t *testing.T) {
	c := New(64)
	k := key(7, "<ruleset/>", "warm")
	c.Preseed(k, Outcome{Behavior: "limited"})
	if got := c.Preseeds(); got != 1 {
		t.Fatalf("preseeds = %d, want 1", got)
	}
	out, ok := c.Get(k)
	if !ok || out.Behavior != "limited" {
		t.Fatalf("preseeded entry not served: %+v, %v", out, ok)
	}
	if _, _, stores := c.Stats(); stores != 1 {
		t.Fatalf("preseed did not count as a store: %d", stores)
	}
}

func TestEntriesAtFiltersByGeneration(t *testing.T) {
	c := New(64)
	for i := 0; i < 5; i++ {
		c.Put(key(2, fmt.Sprintf("p%d", i), "site"), Outcome{RuleIndex: i})
	}
	c.Put(key(3, "newer", "site"), Outcome{})
	got := c.EntriesAt(2)
	if len(got) != 5 {
		t.Fatalf("EntriesAt(2) = %d entries, want 5", len(got))
	}
	for _, e := range got {
		if e.Key.Gen != 2 {
			t.Fatalf("foreign generation in scan: %+v", e.Key)
		}
	}
	if n := len(c.EntriesAt(9)); n != 0 {
		t.Fatalf("EntriesAt(9) = %d entries, want 0", n)
	}
}
