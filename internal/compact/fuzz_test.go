package compact

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3pdb/internal/p3p"
)

// seedCorpus loads the checked-in header corpus: real-shaped CP values,
// casing and whitespace variants, and known-bad tokens. The nightly fuzz
// job grows coverage from these.
func seedCorpus(f *testing.F) {
	entries, err := os.ReadDir(filepath.Join("testdata", "corpus"))
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join("testdata", "corpus", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(strings.TrimRight(string(data), "\n"))
	}
}

// FuzzParse hardens the header decoder: arbitrary CP strings must parse
// or error, never panic, and every accepted summary must survive the
// reconstruction loop (ToPolicy, ToEvidence, FromPolicy, re-Parse).
func FuzzParse(f *testing.F) {
	seedCorpus(f)
	f.Add("")
	f.Add("DSP NID TST")
	f.Add(strings.Repeat("CUR ", 2000))
	f.Add("CUR\x00OUR")
	f.Fuzz(func(t *testing.T, cp string) {
		sum, err := Parse(cp)
		if err != nil {
			return
		}
		pol := sum.ToPolicy("fuzz")
		if pol.String() == "" {
			t.Fatalf("reconstructed policy serializes empty for %q", cp)
		}
		if sum.ToEvidence("fuzz").ToDOM() == nil {
			t.Fatalf("no evidence DOM for %q", cp)
		}
		cp2, err := FromPolicy(pol, nil)
		if err != nil {
			t.Fatalf("reconstruction of %q does not re-encode: %v", cp, err)
		}
		if _, err := Parse(cp2); err != nil {
			t.Fatalf("re-encoded %q -> %q does not re-parse: %v", cp, cp2, err)
		}
	})
}

// FuzzFromPolicy hardens the encoder: policies assembled from arbitrary
// vocabulary strings must encode or error, never panic, and every
// encoding must be a header Parse accepts.
func FuzzFromPolicy(f *testing.F) {
	f.Add("all", "current", "", "ours", "", "stated-purpose", "financial", "#user.name", false, false, "correct")
	f.Add("nonident", "telemarketing", "opt-in", "public", "opt-out", "indefinitely", "health", "#dynamic.miscdata", true, true, "law")
	f.Add("none", "other-purpose", "opt-out", "unrelated", "always", "no-retention", "other-category", "#dynamic.clickstream", false, true, "money")
	f.Add("", "admin", "bogus", "delivery", "", "business-practices", "location", "not-a-ref", true, false, "none")
	f.Fuzz(func(t *testing.T, access, purpose, purposeReq, recipient, recipientReq, retention, category, ref string, nonIdent, disputes bool, remedy string) {
		pol := &p3p.Policy{
			Name:   "fuzz",
			Access: access,
			Statements: []*p3p.Statement{
				{
					NonIdentifiable: nonIdent,
					Retention:       retention,
					Purposes: []p3p.PurposeValue{
						{Value: "current"},
						{Value: purpose, Required: purposeReq},
					},
					Recipients: []p3p.RecipientValue{
						{Value: "ours"},
						{Value: recipient, Required: recipientReq},
					},
					DataGroups: []*p3p.DataGroup{{Data: []*p3p.Data{
						{Ref: ref, Categories: []string{category}},
						{Ref: "#dynamic.miscdata", Categories: []string{category}},
					}}},
				},
				{
					Purposes:   []p3p.PurposeValue{{Value: purpose, Required: "opt-in"}},
					Recipients: []p3p.RecipientValue{{Value: "ours"}},
					Retention:  "stated-purpose",
				},
			},
		}
		if disputes {
			pol.Disputes = []*p3p.Dispute{{ResolutionType: "service", Remedies: []string{remedy}}}
		}
		cp, err := FromPolicy(pol, nil)
		if err != nil {
			return
		}
		sum, err := Parse(cp)
		if err != nil {
			t.Fatalf("encoder emitted unparseable header %q: %v", cp, err)
		}
		// The statement list always carries the "current" purpose, so
		// the union must disclose it.
		found := false
		for _, p := range sum.Purposes {
			if p.Value == "current" {
				found = true
			}
		}
		if !found {
			t.Fatalf("encoding %q lost the current purpose", cp)
		}
	})
}
