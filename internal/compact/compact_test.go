package compact

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/appelengine"
	"p3pdb/internal/p3p"
)

func volga(t testing.TB) *p3p.Policy {
	t.Helper()
	pol, err := p3p.ParsePolicy(p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

func TestFromPolicyVolga(t *testing.T) {
	cp, err := FromPolicy(volga(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"CAO",         // contact-and-other access
		"CUR",         // current purpose
		"CONi",        // contact opt-in
		"IVDi",        // individual-decision opt-in
		"OUR", "SAMa", // recipients
		"STP", "BUS", // retention values of both statements
		"PHY", "DEM", // user.name, postal via the schema
		"ONL", // email
		"PUR", // declared purchase category
	} {
		if !strings.Contains(cp, want) {
			t.Errorf("compact policy missing %q: %s", want, cp)
		}
	}
	if strings.Contains(cp, "TST") || strings.Contains(cp, "DSP") {
		t.Errorf("unexpected tokens in %s", cp)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cp, err := FromPolicy(volga(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(cp)
	if err != nil {
		t.Fatalf("Parse(%s): %v", cp, err)
	}
	if s.Access != "contact-and-other" {
		t.Errorf("access = %q", s.Access)
	}
	var purposes []string
	for _, p := range s.Purposes {
		purposes = append(purposes, p.Value+"/"+p.Required)
	}
	sort.Strings(purposes)
	want := []string{"contact/opt-in", "current/always", "individual-decision/opt-in"}
	if !reflect.DeepEqual(purposes, want) {
		t.Errorf("purposes = %v, want %v", purposes, want)
	}
	if !contains(s.Retentions, "stated-purpose") || !contains(s.Retentions, "business-practices") {
		t.Errorf("retentions = %v", s.Retentions)
	}
	if !contains(s.Categories, "purchase") || !contains(s.Categories, "online") {
		t.Errorf("categories = %v", s.Categories)
	}
}

func contains(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",          // no purposes
		"CUR BOGUS", // unknown token
		"CUR ADMx",  // bad suffix
		"NOI ALL",   // duplicate access (and no purposes, but access dup hits first only with purposes)
		"PHY",       // categories only, no purposes
		"CUR NOIa",  // access token with a suffix is unknown
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
	// NID alone is legal (fully anonymous site).
	if _, err := Parse("NID"); err != nil {
		t.Errorf("Parse(NID): %v", err)
	}
}

func TestToPolicyValidates(t *testing.T) {
	cp, err := FromPolicy(volga(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(cp)
	if err != nil {
		t.Fatal(err)
	}
	pol := s.ToPolicy("volga-compact")
	if errs := pol.Validate(); len(errs) != 0 {
		t.Errorf("reconstructed policy invalid: %v", errs)
	}
	// The strictest retention wins in the reconstruction.
	if pol.Statements[0].Retention != "business-practices" {
		t.Errorf("retention = %q", pol.Statements[0].Retention)
	}
}

// TestCompactDecisionConservative checks the IE6-style use: evaluating a
// preference against the compact reconstruction must agree with the full
// policy on the paper's example, and err toward blocking (the compact
// form merges statements, so purposes and recipients co-occur more).
func TestCompactDecisionConservative(t *testing.T) {
	pol := volga(t)
	cp, err := FromPolicy(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Parse(cp)
	if err != nil {
		t.Fatal(err)
	}
	synthetic := s.ToPolicy("synthetic")
	engine := appelengine.New()
	rs, err := appel.Parse(appel.JanePreferenceXML)
	if err != nil {
		t.Fatal(err)
	}
	full, err := engine.Match(rs, p3p.VolgaPolicyXML)
	if err != nil {
		t.Fatal(err)
	}
	compactDec, err := engine.Match(rs, synthetic.String())
	if err != nil {
		t.Fatal(err)
	}
	if full.Behavior != compactDec.Behavior {
		t.Errorf("full=%s compact=%s (acceptable only if compact blocks more)",
			full.Behavior, compactDec.Behavior)
	}
}

func TestDisputesAndTest(t *testing.T) {
	pol := volga(t)
	pol.Disputes = []*p3p.Dispute{{ResolutionType: "independent", Remedies: []string{"correct", "money"}}}
	pol.TestOnly = true
	cp, err := FromPolicy(pol, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"DSP", "COR", "MON", "TST"} {
		if !strings.Contains(cp, want) {
			t.Errorf("missing %q in %s", want, cp)
		}
	}
	s, err := Parse(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Disputes || !s.Test || len(s.Remedies) != 2 {
		t.Errorf("summary: %+v", s)
	}
}

func TestUnknownVocabulary(t *testing.T) {
	pol := volga(t)
	pol.Statements[0].Purposes = append(pol.Statements[0].Purposes, p3p.PurposeValue{Value: "mystery"})
	if _, err := FromPolicy(pol, nil); err == nil {
		t.Error("unknown purpose should fail")
	}
}
