package compact_test

// The round-trip property behind the protocol loop's fast path: a
// compact policy is a lossy summary, but it must be lossy in the safe
// direction. Reconstructing a policy from its header tokens
// (Parse(FromPolicy(p)).ToPolicy) may overstate what a site collects,
// never understate it — so a preference that blocks the original must
// still block the reconstruction, under every matching engine.
//
// That implication only holds on the monotone fragment SummarySafe
// admits: exact connectives can flip either way under
// over-approximation, and rules naming specific DATA refs lose their
// target when the reconstruction collapses data to category-bearing
// miscdata. The differential therefore doubles as a boundary check on
// SummarySafe itself — every observed violation must come from a
// preference the fast path already refuses. An external test package
// so the differential can drive internal/core.

import (
	"testing"

	"p3pdb/internal/compact"
	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
	"p3pdb/internal/workload"
)

func TestRoundTripNeverMorePermissive(t *testing.T) {
	if testing.Short() {
		t.Skip("full reconstruction differential in -short mode")
	}
	d := workload.Generate(11)

	recon := make([]*p3p.Policy, 0, len(d.Policies))
	for _, pol := range d.Policies {
		cp, err := compact.FromPolicy(pol, nil)
		if err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		sum, err := compact.Parse(cp)
		if err != nil {
			t.Fatalf("%s: header %q does not parse: %v", pol.Name, cp, err)
		}
		rp := sum.ToPolicy(pol.Name)
		// ToPolicy omits entity and discuri; the matcher does not read
		// them, but installation validation may. Carry them over.
		rp.Entity, rp.Discuri = pol.Entity, pol.Discuri
		recon = append(recon, rp)
	}

	orig, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if err := orig.ReplacePolicies(d.Policies, d.RefFile); err != nil {
		t.Fatal(err)
	}
	rsite, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if err := rsite.ReplacePolicies(recon, d.RefFile); err != nil {
		t.Fatal(err)
	}

	pairs, safePairs, unsafeViolations := 0, 0, 0
	for _, pref := range d.Preferences {
		safe := compact.SummarySafe(pref.Ruleset)
		for _, pol := range d.Policies {
			for _, engine := range core.Engines {
				od, err := orig.MatchPolicy(pref.XML, pol.Name, engine)
				if err != nil {
					continue // engine-specific rejection (xtable too-complex)
				}
				rd, rerr := rsite.MatchPolicy(pref.XML, pol.Name, engine)
				if rerr != nil {
					// The reconstruction is a strict simplification (one
					// statement, one data element); an engine that handles
					// the original must handle it.
					t.Errorf("%s/%s/%v: reconstruction fails to match: %v",
						pref.Level, pol.Name, engine, rerr)
					continue
				}
				pairs++
				if safe {
					safePairs++
				}
				if od.Blocked() && !rd.Blocked() {
					if safe {
						t.Errorf("%s/%s/%v: original blocked (rule %d) but reconstruction allowed (rule %d): more permissive under a safe preference",
							pref.Level, pol.Name, engine, od.RuleIndex, rd.RuleIndex)
					} else {
						unsafeViolations++
					}
				}
			}
		}
	}
	if pairs == 0 || safePairs == 0 {
		t.Fatalf("differential compared too little: %d pairs, %d safe", pairs, safePairs)
	}
	t.Logf("compared %d triples (%d under safe preferences), %d violations outside the safe fragment",
		pairs, safePairs, unsafeViolations)
}
