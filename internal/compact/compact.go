// Package compact implements P3P compact policies: the abbreviated
// token form of a policy carried in the HTTP "CP" response header, which
// Internet Explorer 6 evaluated to decide cookie acceptance (the paper's
// Section 3.2). A compact policy summarizes a full policy — the union of
// its purposes, recipients, retention values, and data categories — so a
// user agent can take a fast decision without fetching the policy file.
//
// The package converts between p3p.Policy and the token form, and
// reconstructs a synthetic single-statement policy from tokens so that
// the same APPEL machinery (or its SQL translation) can evaluate compact
// policies too.
package compact

import (
	"fmt"
	"sort"
	"strings"

	"p3pdb/internal/p3p"
	"p3pdb/internal/p3p/basedata"
)

// Token tables, per the P3P 1.0 Recommendation's compact-policy appendix.
var (
	accessTokens = map[string]string{
		"nonident": "NOI", "all": "ALL", "contact-and-other": "CAO",
		"ident-contact": "IDC", "other-ident": "OTI", "none": "NON",
	}
	purposeTokens = map[string]string{
		"current": "CUR", "admin": "ADM", "develop": "DEV", "tailoring": "TAI",
		"pseudo-analysis": "PSA", "pseudo-decision": "PSD",
		"individual-analysis": "IVA", "individual-decision": "IVD",
		"contact": "CON", "historical": "HIS", "telemarketing": "TEL",
		"other-purpose": "OTP",
	}
	recipientTokens = map[string]string{
		"ours": "OUR", "delivery": "DEL", "same": "SAM",
		"other-recipient": "OTR", "unrelated": "UNR", "public": "PUB",
	}
	retentionTokens = map[string]string{
		"no-retention": "NOR", "stated-purpose": "STP",
		"legal-requirement": "LEG", "business-practices": "BUS",
		"indefinitely": "IND",
	}
	categoryTokens = map[string]string{
		"physical": "PHY", "online": "ONL", "uniqueid": "UNI",
		"purchase": "PUR", "financial": "FIN", "computer": "COM",
		"navigation": "NAV", "interactive": "INT", "demographic": "DEM",
		"content": "CNT", "state": "STA", "political": "POL",
		"health": "HEA", "preference": "PRE", "location": "LOC",
		"government": "GOV", "other-category": "OTC",
	}
	remedyTokens = map[string]string{"correct": "COR", "money": "MON", "law": "LAW"}
)

func invert(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

var (
	accessValues    = invert(accessTokens)
	purposeValues   = invert(purposeTokens)
	recipientValues = invert(recipientTokens)
	retentionValues = invert(retentionTokens)
	categoryValues  = invert(categoryTokens)
	remedyValues    = invert(remedyTokens)
)

// requiredSuffix maps a required attribute to the token suffix: "a" for
// always (the default, always written explicitly per the Recommendation's
// examples), "i" for opt-in, "o" for opt-out. The "current" purpose and
// the "ours" recipient take no suffix.
func requiredSuffix(required string) (string, error) {
	switch required {
	case "", "always":
		return "a", nil
	case "opt-in":
		return "i", nil
	case "opt-out":
		return "o", nil
	}
	return "", fmt.Errorf("compact: bad required value %q", required)
}

func suffixRequired(s string) (string, error) {
	switch s {
	case "a":
		return "always", nil
	case "i":
		return "opt-in", nil
	case "o":
		return "opt-out", nil
	}
	return "", fmt.Errorf("compact: bad required suffix %q", s)
}

// TokenReq is one suffixed token: a vocabulary value plus its required
// attribute.
type TokenReq struct {
	Value    string // P3P vocabulary value, e.g. "contact"
	Required string // always | opt-in | opt-out
}

// Summary is a parsed compact policy.
type Summary struct {
	Access          string
	Disputes        bool
	Remedies        []string
	NonIdentifiable bool
	Test            bool
	Purposes        []TokenReq
	Recipients      []TokenReq
	Retentions      []string
	Categories      []string
}

// FromPolicy builds the compact form of a policy: the union over its
// statements, with data categories resolved through the base data schema
// exactly as augmentation resolves them (the compact policy must disclose
// the categories of everything collected).
func FromPolicy(pol *p3p.Policy, schema *basedata.Schema) (string, error) {
	if schema == nil {
		schema = basedata.Default()
	}
	var tokens []string
	if pol.Access != "" {
		tok, ok := accessTokens[pol.Access]
		if !ok {
			return "", fmt.Errorf("compact: unknown access %q", pol.Access)
		}
		tokens = append(tokens, tok)
	}
	if len(pol.Disputes) > 0 {
		tokens = append(tokens, "DSP")
		remedySet := map[string]bool{}
		for _, d := range pol.Disputes {
			for _, r := range d.Remedies {
				tok, ok := remedyTokens[r]
				if !ok {
					return "", fmt.Errorf("compact: unknown remedy %q", r)
				}
				remedySet[tok] = true
			}
		}
		tokens = append(tokens, sortedKeys(remedySet)...)
	}

	// A value may appear in several statements with different required
	// attributes; the compact form carries one token per value, so keep
	// the strongest binding (always > opt-out > opt-in) — the
	// conservative summary a user agent must assume.
	purposeReq := map[string]string{} // token -> strongest required
	recipientReq := map[string]string{}
	retentions := map[string]bool{}
	categories := map[string]bool{}
	nonIdent := false
	for _, st := range pol.Statements {
		if st.NonIdentifiable {
			nonIdent = true
		}
		for _, pv := range st.Purposes {
			if pv.Value == "current" {
				purposeReq["CUR"] = ""
				continue
			}
			tok, ok := purposeTokens[pv.Value]
			if !ok {
				return "", fmt.Errorf("compact: unknown purpose %q", pv.Value)
			}
			if err := mergeRequired(purposeReq, tok, pv.EffectiveRequired()); err != nil {
				return "", err
			}
		}
		for _, rv := range st.Recipients {
			if rv.Value == "ours" {
				recipientReq["OUR"] = ""
				continue
			}
			tok, ok := recipientTokens[rv.Value]
			if !ok {
				return "", fmt.Errorf("compact: unknown recipient %q", rv.Value)
			}
			if err := mergeRequired(recipientReq, tok, rv.EffectiveRequired()); err != nil {
				return "", err
			}
		}
		if st.Retention != "" {
			tok, ok := retentionTokens[st.Retention]
			if !ok {
				return "", fmt.Errorf("compact: unknown retention %q", st.Retention)
			}
			retentions[tok] = true
		}
		for _, dg := range st.DataGroups {
			for _, d := range dg.Data {
				for _, leaf := range shredExpand(schema, d) {
					for _, c := range leaf.Categories {
						tok, ok := categoryTokens[c]
						if !ok {
							return "", fmt.Errorf("compact: unknown category %q", c)
						}
						categories[tok] = true
					}
				}
			}
		}
	}
	if nonIdent {
		tokens = append(tokens, "NID")
	}
	tokens = append(tokens, suffixedTokens(purposeReq)...)
	tokens = append(tokens, suffixedTokens(recipientReq)...)
	tokens = append(tokens, sortedKeys(retentions)...)
	tokens = append(tokens, sortedKeys(categories)...)
	if pol.TestOnly {
		tokens = append(tokens, "TST")
	}
	return strings.Join(tokens, " "), nil
}

// requiredRank orders required bindings by strength for the conservative
// merge: always binds hardest, opt-out weaker, opt-in weakest.
var requiredRank = map[string]int{"opt-in": 0, "opt-out": 1, "always": 2}

// mergeRequired records the strongest required binding seen for a token.
// CUR/OUR map to the empty string and never reach here.
func mergeRequired(m map[string]string, tok, required string) error {
	if _, ok := requiredRank[required]; !ok {
		return fmt.Errorf("compact: bad required value %q", required)
	}
	if cur, seen := m[tok]; !seen || requiredRank[required] > requiredRank[cur] {
		m[tok] = required
	}
	return nil
}

// suffixedTokens renders token->required maps as sorted suffixed tokens.
func suffixedTokens(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for tok, req := range m {
		if req == "" {
			out = append(out, tok)
			continue
		}
		sfx, err := requiredSuffix(req)
		if err != nil {
			// mergeRequired validated the value.
			panic(err)
		}
		out = append(out, tok+sfx)
	}
	sort.Strings(out)
	return out
}

// shredExpand resolves a DATA element's categories the way shredding
// does: leaf expansion plus category resolution.
func shredExpand(schema *basedata.Schema, d *p3p.Data) []basedata.ExpandedRef {
	leaves := schema.Leaves(d.Ref)
	if len(leaves) == 0 {
		bare := strings.TrimPrefix(d.Ref, "#")
		return []basedata.ExpandedRef{{Ref: bare, Categories: schema.CategoriesFor(bare, d.Categories)}}
	}
	out := make([]basedata.ExpandedRef, len(leaves))
	for i, leaf := range leaves {
		out[i] = basedata.ExpandedRef{Ref: leaf.Ref, Categories: schema.CategoriesFor(leaf.Ref, d.Categories)}
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Parse decodes a compact policy header value.
func Parse(cp string) (*Summary, error) {
	s := &Summary{}
	for _, tok := range strings.Fields(cp) {
		base, sfx := tok, ""
		if len(tok) == 4 {
			base, sfx = tok[:3], strings.ToLower(tok[3:])
		}
		base = strings.ToUpper(base)
		switch {
		case tok == "DSP":
			s.Disputes = true
		case tok == "NID":
			s.NonIdentifiable = true
		case tok == "TST":
			s.Test = true
		case remedyValues[base] != "" && sfx == "":
			s.Remedies = append(s.Remedies, remedyValues[base])
		case accessValues[base] != "" && sfx == "":
			if s.Access != "" {
				return nil, fmt.Errorf("compact: multiple access tokens")
			}
			s.Access = accessValues[base]
		case purposeValues[base] != "":
			req := "always"
			if sfx != "" {
				var err error
				req, err = suffixRequired(sfx)
				if err != nil {
					return nil, err
				}
			}
			s.Purposes = append(s.Purposes, TokenReq{Value: purposeValues[base], Required: req})
		case recipientValues[base] != "":
			req := "always"
			if sfx != "" {
				var err error
				req, err = suffixRequired(sfx)
				if err != nil {
					return nil, err
				}
			}
			s.Recipients = append(s.Recipients, TokenReq{Value: recipientValues[base], Required: req})
		case retentionValues[base] != "" && sfx == "":
			s.Retentions = append(s.Retentions, retentionValues[base])
		case categoryValues[base] != "" && sfx == "":
			s.Categories = append(s.Categories, categoryValues[base])
		default:
			return nil, fmt.Errorf("compact: unknown token %q", tok)
		}
	}
	if len(s.Purposes) == 0 && !s.NonIdentifiable {
		return nil, fmt.Errorf("compact: policy discloses no purposes")
	}
	return s, nil
}

// ToPolicy reconstructs a synthetic single-statement policy from the
// summary, suitable for evaluation by any of the matching engines. The
// reconstruction is lossy in the direction the compact form is lossy:
// statement boundaries are gone, and categories attach to a single
// synthetic miscdata element.
func (s *Summary) ToPolicy(name string) *p3p.Policy {
	st := &p3p.Statement{NonIdentifiable: s.NonIdentifiable}
	for _, p := range s.Purposes {
		pv := p3p.PurposeValue{Value: p.Value}
		if p.Required != "always" {
			pv.Required = p.Required
		}
		st.Purposes = append(st.Purposes, pv)
	}
	for _, r := range s.Recipients {
		rv := p3p.RecipientValue{Value: r.Value}
		if r.Required != "always" {
			rv.Required = r.Required
		}
		st.Recipients = append(st.Recipients, rv)
	}
	if len(s.Retentions) > 0 {
		// A statement holds one retention; the summary's strictest
		// (longest-lived) value is the conservative reconstruction.
		st.Retention = strictestRetention(s.Retentions)
	}
	if len(s.Categories) > 0 {
		st.DataGroups = []*p3p.DataGroup{{
			Data: []*p3p.Data{{Ref: "#dynamic.miscdata", Categories: append([]string(nil), s.Categories...)}},
		}}
	}
	pol := &p3p.Policy{Name: name, Access: s.Access, Statements: []*p3p.Statement{st}}
	if s.Disputes {
		pol.Disputes = []*p3p.Dispute{{ResolutionType: "service", Remedies: s.Remedies}}
	}
	pol.TestOnly = s.Test
	return pol
}

// retentionOrder ranks retention values from least to most retentive.
var retentionOrder = map[string]int{
	"no-retention": 0, "stated-purpose": 1, "legal-requirement": 2,
	"business-practices": 3, "indefinitely": 4,
}

func strictestRetention(vals []string) string {
	best := vals[0]
	for _, v := range vals[1:] {
		if retentionOrder[v] > retentionOrder[best] {
			best = v
		}
	}
	return best
}
