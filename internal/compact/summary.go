package compact

import (
	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
)

// This file supports the compact-policy fast path (DESIGN.md §11): the
// server evaluates a preference's block rules against a synthetic
// *evidence* policy derived from the compact summary, and treats "no
// block rule fires" as proof that full matching cannot block either.
// That implication only holds when every block rule sits inside a
// restricted pattern fragment — SummarySafe decides membership — and
// when the evidence over-approximates every original statement —
// ToEvidence constructs it that way.

// ToEvidence reconstructs a conservative evidence policy from the
// summary for fast-path evaluation. Unlike ToPolicy (which builds the
// single-statement form the paper's engines evaluate), the evidence is
// shaped to *over-approximate* the original policy under the safe
// pattern fragment: one statement per retention value (so a retention
// pattern fires iff the original disclosed that retention), and every
// statement carries the full union of purposes, recipients, the
// non-identifiable marker, and an unconditional data element bearing
// the union of categories. Any element a safe block rule could have
// matched in the original policy has a counterpart here.
func (s *Summary) ToEvidence(name string) *p3p.Policy {
	purposes := make([]p3p.PurposeValue, 0, len(s.Purposes))
	for _, p := range s.Purposes {
		pv := p3p.PurposeValue{Value: p.Value}
		if p.Required != "always" {
			pv.Required = p.Required
		}
		purposes = append(purposes, pv)
	}
	recipients := make([]p3p.RecipientValue, 0, len(s.Recipients))
	for _, r := range s.Recipients {
		rv := p3p.RecipientValue{Value: r.Value}
		if r.Required != "always" {
			rv.Required = r.Required
		}
		recipients = append(recipients, rv)
	}
	// One statement per retention; a single retention-free statement
	// when the summary discloses none. Every statement repeats the full
	// unions: a pattern that matched inside any original statement must
	// find its elements inside whichever statement it lands on.
	retentions := s.Retentions
	if len(retentions) == 0 {
		retentions = []string{""}
	}
	pol := &p3p.Policy{Name: name, Access: s.Access, TestOnly: s.Test}
	for _, ret := range retentions {
		st := &p3p.Statement{
			NonIdentifiable: s.NonIdentifiable,
			Retention:       ret,
			Purposes:        purposes,
			Recipients:      recipients,
			// The data element is unconditional: the compact form drops
			// statements' data references, so the evidence must assume
			// data was collected even when the category union is empty —
			// otherwise a bare <DATA ref="*"> pattern could underfire.
			DataGroups: []*p3p.DataGroup{{Data: []*p3p.Data{{
				Ref:        "#dynamic.miscdata",
				Categories: append([]string(nil), s.Categories...),
			}}}},
		}
		pol.Statements = append(pol.Statements, st)
	}
	if s.Disputes {
		pol.Disputes = []*p3p.Dispute{{ResolutionType: "service", Remedies: s.Remedies}}
	}
	return pol
}

// summarySafeNames is the element vocabulary the safe pattern fragment
// may mention: the structural elements the evidence reconstructs plus
// every vocabulary value the compact token tables carry (anything else —
// ENTITY, EXTENSION, CONSEQUENCE, unknown categories — is not preserved
// by summarization, so a pattern naming it could underfire).
var summarySafeNames = func() map[string]bool {
	m := map[string]bool{
		"POLICY": true, "STATEMENT": true, "PURPOSE": true,
		"RECIPIENT": true, "RETENTION": true, "DATA-GROUP": true,
		"DATA": true, "CATEGORIES": true, "NON-IDENTIFIABLE": true,
		"ACCESS": true, "DISPUTES-GROUP": true, "DISPUTES": true,
		"REMEDIES": true, "TEST": true,
	}
	for _, tbl := range []map[string]string{
		accessTokens, purposeTokens, recipientTokens,
		retentionTokens, categoryTokens, remedyTokens,
	} {
		for name := range tbl {
			m[name] = true
		}
	}
	return m
}()

// SummarySafe reports whether a ruleset is eligible for the compact
// fast path: evaluating its block rules against ToEvidence output and
// seeing none fire proves full evaluation cannot block. Three
// obligations, each guarding one way the implication could break:
//
//   - The final rule must be a catch-all (empty body, the OTHERWISE
//     shape), so full evaluation never errors with "no rule fired"
//     where the fast path would have allowed.
//   - Block rules use only the monotone connectives (and/or). The
//     evidence is an over-approximation, so monotone patterns can only
//     over-fire on it (a harmless forced fallback); the exact and
//     negated connectives can under-fire, which would turn a full-match
//     block into a wrong fast allow.
//   - Block-rule patterns mention only summarized elements, and only
//     the attribute patterns summarization preserves: required limited
//     to */always (the union keeps the strongest binding, so a weaker
//     pattern value could underfire after merging), optional limited to
//     */no (the evidence never writes optional), and DATA ref limited
//     to the wildcard (statement-level data references are exactly what
//     the compact form discards).
//
// Rules with non-block behaviors are unrestricted: the fast path only
// proves "full matching does not block", and a non-block rule firing
// first can only make full matching allow.
func SummarySafe(rs *appel.Ruleset) bool {
	if rs == nil || len(rs.Rules) == 0 {
		return false
	}
	if len(rs.Rules[len(rs.Rules)-1].Body) != 0 {
		return false
	}
	for _, r := range rs.Rules {
		if r.Behavior != "block" {
			continue
		}
		switch r.EffectiveConnective() {
		case appel.ConnAnd, appel.ConnOr:
		default:
			return false
		}
		for _, e := range r.Body {
			if !exprSummarySafe(e) {
				return false
			}
		}
	}
	return true
}

func exprSummarySafe(e *appel.Expr) bool {
	if !summarySafeNames[e.Name] {
		return false
	}
	switch e.EffectiveConnective() {
	case appel.ConnAnd, appel.ConnOr:
	default:
		return false
	}
	for _, a := range e.Attrs {
		switch {
		case a.Name == "required" && (a.Value == "*" || a.Value == "always"):
		case a.Name == "optional" && (a.Value == "*" || a.Value == "no"):
		case e.Name == "DATA" && a.Name == "ref" && a.Value == "*":
		default:
			return false
		}
	}
	for _, c := range e.Children {
		if !exprSummarySafe(c) {
			return false
		}
	}
	return true
}

// BlockRules extracts the block-behavior rules of a ruleset, in order,
// as a standalone ruleset for fast-path evaluation. The rules are
// shared, not copied: rulesets are immutable after parse.
func BlockRules(rs *appel.Ruleset) *appel.Ruleset {
	out := &appel.Ruleset{}
	for _, r := range rs.Rules {
		if r.Behavior == "block" {
			out.Rules = append(out.Rules, r)
		}
	}
	return out
}
