package compact

import (
	"testing"

	"p3pdb/internal/appel"
)

const blockRulesFixture = `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"
    xmlns="http://www.w3.org/2002/01/P3Pv1">
  <appel:RULE behavior="block" description="no telemarketing">
    <POLICY><STATEMENT><PURPOSE appel:connective="or"><telemarketing/></PURPOSE></STATEMENT></POLICY>
  </appel:RULE>
  <appel:RULE behavior="limited" description="warn on sharing">
    <POLICY><STATEMENT><RECIPIENT appel:connective="or"><public/></RECIPIENT></STATEMENT></POLICY>
  </appel:RULE>
  <appel:RULE behavior="block" description="no indefinite retention">
    <POLICY><STATEMENT><RETENTION appel:connective="or"><indefinitely/></RETENTION></STATEMENT></POLICY>
  </appel:RULE>
  <appel:OTHERWISE behavior="request"/>
</appel:RULESET>`

// TestBlockRules checks the filter the fast path evaluates: block rules
// only, original order, non-block behaviors dropped.
func TestBlockRules(t *testing.T) {
	rs, err := appel.Parse(blockRulesFixture)
	if err != nil {
		t.Fatal(err)
	}
	blocks := BlockRules(rs)
	if len(blocks.Rules) != 2 {
		t.Fatalf("block rules = %d, want 2", len(blocks.Rules))
	}
	for i, want := range []string{"no telemarketing", "no indefinite retention"} {
		if blocks.Rules[i].Behavior != "block" || blocks.Rules[i].Description != want {
			t.Errorf("rule %d = %q/%q, want block/%q",
				i, blocks.Rules[i].Behavior, blocks.Rules[i].Description, want)
		}
	}
	if !SummarySafe(rs) {
		t.Error("fixture's block rules are monotone; SummarySafe must admit it")
	}
	if SummarySafe(nil) || SummarySafe(&appel.Ruleset{}) {
		t.Error("nil/empty rulesets must be unsafe")
	}
}

// TestSummarySafeRejections covers the fragment's boundary from the
// package's own side (the fuller eligibility matrix lives in
// internal/core's conformance tests): a missing catch-all and a
// non-monotone block connective each disqualify the whole ruleset.
func TestSummarySafeRejections(t *testing.T) {
	for name, src := range map[string]string{
		"no catch-all": `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"
		    xmlns="http://www.w3.org/2002/01/P3Pv1">
		  <appel:RULE behavior="block">
		    <POLICY><STATEMENT><PURPOSE appel:connective="or"><telemarketing/></PURPOSE></STATEMENT></POLICY>
		  </appel:RULE>
		</appel:RULESET>`,
		"exact block connective": `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1"
		    xmlns="http://www.w3.org/2002/01/P3Pv1">
		  <appel:RULE behavior="block">
		    <POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/></PURPOSE></STATEMENT></POLICY>
		  </appel:RULE>
		  <appel:OTHERWISE behavior="request"/>
		</appel:RULESET>`,
	} {
		rs, err := appel.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if SummarySafe(rs) {
			t.Errorf("%s: must be unsafe", name)
		}
	}
}
