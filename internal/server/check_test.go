package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3pdb/internal/core"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/registry"
	"p3pdb/internal/workload"
)

// checkTestSite builds a workload-backed site and its HTTP server.
func checkTestSite(t testing.TB, seed int64) (*core.Site, *workload.Dataset, *Client) {
	t.Helper()
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(seed)
	if err := site.ReplacePolicies(d.Policies, d.RefFile); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)
	return site, d, NewClient(ts.URL)
}

// readConformancePreferences loads the shared conformance corpus's
// preference side (curated APPEL edge cases: exact connectives, empty
// expressions, foreign namespaces, missing catch-alls).
func readConformancePreferences(t *testing.T) map[string]string {
	t.Helper()
	dir := filepath.Join("..", "core", "testdata", "conformance", "preferences")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("conformance corpus: %v", err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[strings.TrimSuffix(e.Name(), ".xml")] = string(data)
	}
	if len(out) == 0 {
		t.Fatal("conformance corpus is empty")
	}
	return out
}

// TestCheckHTTPConformance is the protocol conformance suite: /check is
// driven over HTTP through reference-file lookup, compact pre-decision,
// and full-match fallback, for every conformance-corpus preference and
// all three agent levels against every workload policy. The invariant
// is conservatism: whenever the response says the fast path allowed,
// none of the four engines may block that (preference, policy) pair.
func TestCheckHTTPConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full HTTP differential in -short mode")
	}
	site, d, c := checkTestSite(t, 7)

	type pref struct{ level, xml string }
	prefs := []pref{{"apathetic", ""}, {"mild", ""}, {"paranoid", ""}}
	for stem, xml := range readConformancePreferences(t) {
		prefs = append(prefs, pref{stem, xml})
	}

	fastAllows := 0
	for _, p := range prefs {
		for _, pol := range d.Policies {
			res, cpHeader, err := c.Check(CheckRequest{
				URL: d.URIFor(pol.Name), Level: p.level, Preference: p.xml,
			})
			if err != nil {
				// Corpus preferences without a catch-all error in full
				// matching; the endpoint must surface that, never a
				// fabricated allow. (Agent levels always succeed.)
				if p.xml == "" {
					t.Errorf("%s/%s: %v", p.level, pol.Name, err)
				}
				continue
			}
			if res.URL == nil || res.URL.PolicyName != pol.Name {
				t.Fatalf("%s/%s: wrong applicable policy: %+v", p.level, pol.Name, res.URL)
			}
			if res.URL.CP == "" || !strings.Contains(cpHeader, `CP="`) {
				t.Errorf("%s/%s: missing compact policy (body %q, header %q)",
					p.level, pol.Name, res.URL.CP, cpHeader)
			}
			if !res.URL.FastPath {
				if res.URL.Decision == nil {
					t.Errorf("%s/%s: fallback carried no decision", p.level, pol.Name)
				}
				continue
			}
			fastAllows++
			if !res.Allowed {
				t.Errorf("%s/%s: fast path may only prove allows", p.level, pol.Name)
			}
			prefXML := p.xml
			if prefXML == "" {
				wp, ok := resolvePreference(p.level)
				if !ok {
					t.Fatalf("unresolvable level %s", p.level)
				}
				prefXML = wp.XML
			}
			for _, engine := range core.Engines {
				full, err := site.MatchPolicy(prefXML, pol.Name, engine)
				if err != nil {
					continue // engine-specific rejection (e.g. xtable too-complex)
				}
				if full.Blocked() {
					t.Errorf("%s/%s: fast allow contradicted by %v (rule %d)",
						p.level, pol.Name, engine, full.RuleIndex)
				}
			}
		}
	}
	if fastAllows == 0 {
		t.Fatal("no request took the fast path over HTTP")
	}
}

// TestCheckHTTPCookieAndURL exercises the two-part check: the response's
// overall verdict is the conjunction, and each part resolves through its
// own reference-file rule set.
func TestCheckHTTPCookieAndURL(t *testing.T) {
	_, d, c := checkTestSite(t, 3)
	pol := d.Policies[0].Name
	res, _, err := c.Check(CheckRequest{
		URL: d.URIFor(pol), Cookie: d.CookieFor(pol), Level: "apathetic",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.URL == nil || res.Cookie == nil {
		t.Fatalf("missing parts: %+v", res)
	}
	if res.URL.PolicyName != pol || res.Cookie.PolicyName != pol {
		t.Errorf("parts resolved to %q/%q, want %q", res.URL.PolicyName, res.Cookie.PolicyName, pol)
	}
	if res.Allowed != (res.URL.Allowed && res.Cookie.Allowed) {
		t.Errorf("overall allowed is not the conjunction: %+v", res)
	}
	// An excluded cookie pattern must fail resolution.
	if _, _, err := c.Check(CheckRequest{Cookie: pol + "-internal-tracker", Level: "apathetic"}); err == nil {
		t.Error("cookie under COOKIE-EXCLUDE: want resolution error")
	}
	// Unknown level and missing targets are client errors.
	if _, _, err := c.Check(CheckRequest{URL: d.URIFor(pol), Level: "nonsense"}); err == nil {
		t.Error("unknown level: want 400")
	}
	if _, _, err := c.Check(CheckRequest{Level: "mild"}); err == nil {
		t.Error("no url or cookie: want 400")
	}
}

// TestCheckHTTPBadRequests pins the endpoint's client-error surface.
func TestCheckHTTPBadRequests(t *testing.T) {
	_, d, c := checkTestSite(t, 19)
	target := d.URIFor(d.Policies[0].Name)
	// POSTing a blank preference is a 400, not an empty-document match.
	if _, _, err := c.Check(CheckRequest{URL: target, Preference: "   "}); err == nil {
		t.Error("blank POSTed preference: want 400")
	}
	// Unknown engines are rejected before any matching runs.
	if _, _, err := c.Check(CheckRequest{URL: target, Level: "mild", Engine: "quantum"}); err == nil {
		t.Error("unknown engine: want 400")
	}
	// JRC profile names resolve case-insensitively alongside attitudes.
	res, _, err := c.Check(CheckRequest{URL: target, Level: "very low"})
	if err != nil {
		t.Fatalf("JRC level name: %v", err)
	}
	if !res.URL.FastPath {
		t.Error("Very Low has no block rules; every check must fast-path")
	}
}

// TestCheckHTTPForcedFallback is the outage drill over HTTP: with
// fastpath.summary armed, /check still answers 200 with the full
// engine's verdict and reports the forced fallback.
func TestCheckHTTPForcedFallback(t *testing.T) {
	faultkit.Reset()
	t.Cleanup(faultkit.Reset)
	_, d, c := checkTestSite(t, 5)
	if err := faultkit.Enable(faultkit.PointFastpathSummary + ":error"); err != nil {
		t.Fatal(err)
	}
	for _, pol := range d.Policies[:3] {
		res, _, err := c.Check(CheckRequest{URL: d.URIFor(pol.Name), Level: "apathetic"})
		if err != nil {
			t.Fatalf("%s: %v", pol.Name, err)
		}
		if res.URL.FastPath || res.URL.FallbackReason != "forced" {
			t.Errorf("%s: want forced fallback, got %+v", pol.Name, res.URL)
		}
		if res.URL.Decision == nil {
			t.Errorf("%s: forced fallback carried no decision", pol.Name)
		}
	}
	if faultkit.Firings(faultkit.PointFastpathSummary) == 0 {
		t.Error("fault never fired")
	}
}

// TestCheckMultiTenant routes /sites/{name}/check through the
// MultiServer's prefix delegation: per-tenant reference files resolve
// independently and each tenant's CP header reflects its own policy.
func TestCheckMultiTenant(t *testing.T) {
	reg, err := registry.New(registry.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMulti(reg))
	t.Cleanup(ts.Close)
	// Provision over the admin API, the way p3pload -setup does.
	admin := NewClient(ts.URL)
	for i, name := range []string{"alpha.example", "beta.example"} {
		if err := admin.CreateSite(name); err != nil {
			t.Fatal(err)
		}
		// Re-provisioning an existing tenant is tolerated.
		if err := admin.CreateSite(name); err != nil {
			t.Fatalf("re-create %s: %v", name, err)
		}
		tc := NewClient(ts.URL + "/sites/" + name)
		d := workload.Generate(int64(100 + i))
		for _, pol := range d.Policies {
			if _, err := tc.InstallPolicies(d.PolicyXML[pol.Name]); err != nil {
				t.Fatalf("%s: installing %s: %v", name, pol.Name, err)
			}
		}
		if err := tc.InstallReferenceFile(d.RefFile.String()); err != nil {
			t.Fatal(err)
		}
	}

	d := workload.Generate(100)
	pol := d.Policies[0].Name
	for _, tenant := range []string{"alpha.example", "beta.example"} {
		c := NewClient(ts.URL + "/sites/" + tenant)
		res, cpHeader, err := c.Check(CheckRequest{URL: d.URIFor(pol), Level: "paranoid"})
		if err != nil {
			t.Fatalf("%s: %v", tenant, err)
		}
		if res.URL.PolicyName != pol {
			t.Errorf("%s: resolved %q", tenant, res.URL.PolicyName)
		}
		if cpHeader == "" {
			t.Errorf("%s: no P3P header", tenant)
		}
	}
	// Unknown tenant is a JSON 404 from the registry layer.
	c := NewClient(ts.URL + "/sites/ghost.example")
	if _, _, err := c.Check(CheckRequest{URL: d.URIFor(pol), Level: "mild"}); err == nil {
		t.Error("unknown tenant: want 404")
	}
}

// TestClientTransportErrors drives every client method against a dead
// address and a non-JSON error body: all must return errors, none may
// fabricate a decision.
func TestClientTransportErrors(t *testing.T) {
	dead := NewClient("http://127.0.0.1:1")
	if _, _, err := dead.Check(CheckRequest{URL: "/x", Level: "mild"}); err == nil {
		t.Error("Check against dead address: want error")
	}
	if _, err := dead.CanVisit("/x"); err == nil {
		t.Error("CanVisit: want error")
	}
	if _, err := dead.Policies(); err == nil {
		t.Error("Policies: want error")
	}
	if _, err := dead.Analytics(); err == nil {
		t.Error("Analytics: want error")
	}
	if _, err := dead.FetchPolicy("x"); err == nil {
		t.Error("FetchPolicy: want error")
	}
	if _, err := dead.InstallPolicies("<POLICY/>"); err == nil {
		t.Error("InstallPolicies: want error")
	}
	if err := dead.InstallReferenceFile("<META/>"); err == nil {
		t.Error("InstallReferenceFile: want error")
	}
	if err := dead.CreateSite("x"); err == nil {
		t.Error("CreateSite: want error")
	}

	// A proxy answering plain text must still surface a status error.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "upstream exploded", http.StatusBadGateway)
	}))
	t.Cleanup(ts.Close)
	if _, _, err := NewClient(ts.URL).Check(CheckRequest{URL: "/x", Level: "mild"}); err == nil ||
		!strings.Contains(err.Error(), "502") {
		t.Errorf("non-JSON error body: got %v", err)
	}
}

// TestCheckPolicyFetchHeader asserts the client-centric fetch path also
// carries the compact form in the standard header.
func TestCheckPolicyFetchHeader(t *testing.T) {
	_, d, c := checkTestSite(t, 13)
	pol := d.Policies[0].Name
	resp, err := c.http.Get(c.base + "/policies/" + pol)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("P3P"); !strings.HasPrefix(got, `CP="`) {
		t.Errorf("policy fetch P3P header = %q", got)
	}
}
