package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
	"p3pdb/internal/workload"
)

// postPref registers a preference and decodes the response envelope.
func postPref(t *testing.T, base, name, engines, body string) PrefRegisterResponse {
	t.Helper()
	u := base + "/prefs?name=" + url.QueryEscape(name)
	if engines != "" {
		u += "&engines=" + url.QueryEscape(engines)
	}
	resp, err := http.Post(u, "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		var ae apiError
		decodeBody(t, resp, &ae)
		t.Fatalf("POST /prefs: status %d: %+v", resp.StatusCode, ae)
	}
	var out PrefRegisterResponse
	decodeBody(t, resp, &out)
	return out
}

func getPrefs(t *testing.T, base string) PrefsStatus {
	t.Helper()
	resp, err := http.Get(base + "/prefs")
	if err != nil {
		t.Fatal(err)
	}
	var out PrefsStatus
	decodeBody(t, resp, &out)
	return out
}

// TestPrefsRegisterWarmsMatches: registering a resident preference
// pre-warms the decision cache, so the very first /matchpolicy for that
// pair after the registration publish is already a cache hit.
func TestPrefsRegisterWarmsMatches(t *testing.T) {
	ts, c := testServer(t)
	installVolga(t, c)

	reg := postPref(t, ts.URL, "jane", "sql,native", appel.JanePreferenceXML)
	if reg.Name != "jane" || len(reg.Engines) != 2 || reg.Rules == 0 {
		t.Fatalf("register response: %+v", reg)
	}

	for _, engine := range []string{"sql", "native"} {
		resp, err := http.Post(ts.URL+"/matchpolicy?policy=volga&engine="+engine,
			"application/xml", strings.NewReader(appel.JanePreferenceXML))
		if err != nil {
			t.Fatal(err)
		}
		var d MatchResponse
		decodeBody(t, resp, &d)
		if !d.Cached {
			t.Errorf("%s: first match after registration not served warm: %+v", engine, d)
		}
	}

	st := getPrefs(t, ts.URL)
	if len(st.Preferences) != 1 || st.Preferences[0].Name != "jane" {
		t.Fatalf("status preferences: %+v", st.Preferences)
	}
	if st.LastPublish.Evaluated == 0 {
		t.Fatalf("registration publish evaluated nothing: %+v", st.LastPublish)
	}
	if st.Decisions.Preseeds == 0 || st.Decisions.Hits < 2 {
		t.Fatalf("warm-status cache detail: %+v", st.Decisions)
	}
}

// TestPrefsErrors covers the request-validation and replica guards.
func TestPrefsErrors(t *testing.T) {
	ts, c := testServer(t)
	installVolga(t, c)

	post := func(path, body string) int {
		resp, err := http.Post(ts.URL+path, "application/xml", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post("/prefs", appel.JanePreferenceXML); got != http.StatusBadRequest {
		t.Errorf("missing name: status %d", got)
	}
	if got := post("/prefs?name=bad", "<not-appel/>"); got != http.StatusBadRequest {
		t.Errorf("malformed ruleset: status %d", got)
	}
	if got := post("/prefs?name=bad&engines=warp", appel.JanePreferenceXML); got != http.StatusBadRequest {
		t.Errorf("unknown engine: status %d", got)
	}

	// A follower rejects registrations like any other mutation.
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	ro := httptest.NewServer(NewWithOptions(site, Options{ReadOnly: true, Leader: "http://leader"}))
	t.Cleanup(ro.Close)
	resp, err := http.Post(ro.URL+"/prefs?name=x", "application/xml", strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	var ae apiError
	decodeBody(t, resp, &ae)
	if resp.StatusCode != http.StatusForbidden || ae.Reason != "read-only-replica" || ae.Leader != "http://leader" {
		t.Errorf("read-only rejection: status %d, %+v", resp.StatusCode, ae)
	}
}

// TestPrefsMultiTenantAndDurable: the endpoint routes through
// /sites/{name}/prefs, journals the registration, and a restart replays
// it.
func TestPrefsMultiTenantAndDurable(t *testing.T) {
	stateDir := t.TempDir()
	ts, _, journal, store := durableServer(t, stateDir)
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(p3p.VolgaPolicyXML); err != nil {
		t.Fatal(err)
	}

	before := journal.Status().LSN
	postPref(t, ts.URL, "jane", "", appel.JanePreferenceXML)
	if got := journal.Status().LSN; got != before+1 {
		t.Fatalf("registration not journaled: LSN %d -> %d", before, got)
	}

	ts.Close()
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}
	site2, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	journal2, err := store.OpenTenant("default")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal2.Close() })
	if err := journal2.ReplayInto(site2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewWithOptions(site2, Options{Journal: journal2}))
	t.Cleanup(ts2.Close)
	st := getPrefs(t, ts2.URL)
	if len(st.Preferences) != 1 || st.Preferences[0].Name != "jane" {
		t.Fatalf("restart lost the registration: %+v", st.Preferences)
	}

	// Multi-tenant routing: the same handler answers under /sites/{name}.
	mts, _, _ := multiFixture(t)
	reg := postPrefAt(t, mts.URL+"/sites/a.example", "jane", appel.JanePreferenceXML)
	if reg.Name != "jane" {
		t.Fatalf("multi-tenant register: %+v", reg)
	}
	mst := getPrefs(t, mts.URL+"/sites/a.example")
	if len(mst.Preferences) != 1 || mst.Preferences[0].Name != "jane" {
		t.Fatalf("multi-tenant status: %+v", mst.Preferences)
	}
}

func postPrefAt(t *testing.T, base, name, body string) PrefRegisterResponse {
	t.Helper()
	return postPref(t, base, name, "", body)
}

// TestPrefsServerChurn hammers /matchpolicy while registrations and
// full-set replaces race: every response must be a 200 with a coherent
// decision — never an error, never a decision from a generation that was
// not published.
func TestPrefsServerChurn(t *testing.T) {
	ds := workload.Generate(7)
	site, err := core.NewSiteWithOptions(core.Options{ConversionCacheSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if err := site.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)

	pref := ds.Preferences[0].XML
	pol := ds.Policies[0].Name
	want, err := site.MatchPolicy(pref, pol, core.EngineSQL)
	if err != nil {
		t.Fatal(err)
	}

	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	var wg sync.WaitGroup
	done := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		variants := workload.PreferenceVariants(ds.Preferences[0].Level, rounds)
		for i := 0; i < rounds; i++ {
			if _, err := http.Post(ts.URL+"/prefs?name=v"+fmt.Sprint(i), "application/xml",
				strings.NewReader(variants[i].XML)); err != nil {
				t.Errorf("register round %d: %v", i, err)
				return
			}
			if err := site.ReplacePolicies(ds.Policies, ds.RefFile); err != nil {
				t.Errorf("replace round %d: %v", i, err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/matchpolicy?policy="+pol+"&engine=sql",
					"application/xml", strings.NewReader(pref))
				if err != nil {
					t.Errorf("match during churn: %v", err)
					return
				}
				var d MatchResponse
				if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
					t.Error(err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || d.Behavior != want.Behavior || d.RuleIndex != want.RuleIndex {
					t.Errorf("churn decision diverged: status %d, %+v (want %+v)", resp.StatusCode, d, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
