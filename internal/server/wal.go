// The leader half of replication (DESIGN.md §12): GET /wal streams a
// tenant's write-ahead log from a given LSN as the same CRC32C-framed
// records the on-disk log holds, and GET /replication/status reports
// every resident tenant's log position so routers can gate followers on
// caught-up LSNs. In multi-tenant mode the stream is reached as
// GET /sites/{name}/wal.
package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"p3pdb/internal/durable"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
)

// maxWALWait bounds the long-poll a follower may request; longer waits
// just reconnect.
const maxWALWait = 30 * time.Second

// WAL streaming observability, surfaced on /metrics as server.wal.*.
var (
	obsWALStreams   = obs.GetCounter("server.wal.streams")
	obsWALRecords   = obs.GetCounter("server.wal.records_shipped")
	obsWALSnapshots = obs.GetCounter("server.wal.snapshots_shipped")
	obsWALDropped   = obs.GetCounter("server.wal.dropped_streams")
)

// handleWAL implements GET /wal?from=N&wait=D: every record with LSN > N
// as framed bytes, preceded by an OpState record carrying the checkpoint
// snapshot when N predates it (a checkpoint truncates the log, so the
// records below it no longer exist to ship). X-WAL-LSN carries the
// tenant's current LSN — the number followers report lag against. With
// wait > 0 and nothing to ship, the request long-polls until a record
// lands or the wait expires (returning an empty, headers-only stream).
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	q := r.URL.Query()
	var from uint64
	if v := q.Get("from"); v != "" {
		parsed, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad from parameter: %w", err))
			return
		}
		from = parsed
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		parsed, err := time.ParseDuration(v)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad wait parameter: %w", err))
			return
		}
		wait = min(parsed, maxWALWait)
	}
	deadline := time.Now().Add(wait)
	j := s.opts.Journal
	for {
		// Grab the notification channel before reading: a record landing
		// in between shows up in ReadFrom's result, one landing after
		// closes the channel we hold — no lost wakeups either way.
		changed := j.Changed()
		snap, recs, lsn, err := j.ReadFrom(from)
		if err != nil {
			if errors.Is(err, durable.ErrClosed) {
				writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error(), Reason: "journal-closed"})
				return
			}
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if snap == nil && len(recs) == 0 && wait > 0 && time.Now().Before(deadline) {
			select {
			case <-r.Context().Done():
				return
			case <-changed:
			case <-time.After(time.Until(deadline)):
			}
			continue
		}

		frames := make([][]byte, 0, len(recs)+1)
		if snap != nil {
			frame, err := durable.EncodeRecord(durable.StateRecord(snap))
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			frames = append(frames, frame)
		}
		for i := range recs {
			frame, err := durable.EncodeRecord(&recs[i])
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			frames = append(frames, frame)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-WAL-LSN", strconv.FormatUint(lsn, 10))
		obsWALStreams.Inc()
		if err := faultkit.Inject(faultkit.PointReplicaStream); err != nil {
			// Cut the stream mid-frame: what a dying leader or dropped
			// connection leaves the follower holding. The follower must
			// classify it as torn and retry from its applied LSN.
			obsWALDropped.Inc()
			if len(frames) > 0 {
				_, _ = w.Write(frames[0][:len(frames[0])/2])
			}
			return
		}
		if snap != nil {
			obsWALSnapshots.Inc()
		}
		obsWALRecords.Add(int64(len(recs)))
		for _, frame := range frames {
			if _, err := w.Write(frame); err != nil {
				return
			}
		}
		return
	}
}

// ReplicationStatus is the GET /replication/status envelope, shared by
// leaders (internal/server) and followers (internal/replica) so the
// router parses one shape.
type ReplicationStatus struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// Ready mirrors /readyz: followers gate it on replication lag.
	Ready bool `json:"ready"`
	// Tenants maps tenant name to its replication position.
	Tenants map[string]TenantReplication `json:"tenants"`
}

// TenantReplication is one tenant's replication position.
type TenantReplication struct {
	// LSN is the position served from: the log head on a leader, the
	// applied LSN on a follower.
	LSN uint64 `json:"lsn"`
	// LeaderLSN is the leader log head as last observed (followers only).
	LeaderLSN uint64 `json:"leaderLSN,omitempty"`
	// Lag is LeaderLSN - LSN, clamped at zero (followers only).
	Lag uint64 `json:"lag"`
	// CheckpointLSN is the newest checkpoint (leaders only).
	CheckpointLSN uint64 `json:"checkpointLSN,omitempty"`
	// Synced reports at least one completed catch-up round.
	Synced bool `json:"synced"`
	// LastError is the most recent sync failure, empty when healthy.
	LastError string `json:"lastError,omitempty"`
}

// handleReplication implements the leader's GET /replication/status:
// every resident journaled tenant's log position.
func (m *MultiServer) handleReplication(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	st := ReplicationStatus{Role: "leader", Ready: m.reg.Ready(), Tenants: map[string]TenantReplication{}}
	for _, name := range m.reg.Names() {
		if j := m.reg.Journal(name); j != nil {
			js := j.Status()
			st.Tenants[name] = TenantReplication{
				LSN:           js.LSN,
				CheckpointLSN: js.CheckpointLSN,
				Synced:        true,
			}
		}
	}
	writeJSON(w, http.StatusOK, st)
}
