// Package server exposes a core.Site over HTTP: the deployed form of the
// paper's server-centric architecture (Figures 5 and 6). Site owners
// install policies and the reference file; thin clients submit their APPEL
// preference with the URI they want to visit and receive the matching
// decision, keeping all parsing, augmentation, and query processing on the
// server.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/obs"
	"p3pdb/internal/reldb"
	"p3pdb/internal/resource"
)

// maxBodyBytes bounds request bodies; P3P documents are small.
const maxBodyBytes = 1 << 20

// defaultReadHeaderTimeout bounds how long a connection may dribble its
// headers before the server gives up on it (slowloris protection).
const defaultReadHeaderTimeout = 5 * time.Second

// Options configure the HTTP layer's resource governance. The zero value
// leaves requests ungoverned (beyond any Site-level budget).
type Options struct {
	// RequestTimeout, when positive, bounds each matching request: the
	// request context is wrapped in a deadline, so a match that overruns
	// is aborted in the engines and reported as 504.
	RequestTimeout time.Duration
	// Journal, when set, makes the admin mutation endpoints durable:
	// POST/PUT /policies, DELETE /policies/{name}, and POST /reference
	// are applied and logged to the tenant's write-ahead log before the
	// 2xx is sent, a checkpoint is cut automatically past the configured
	// record count, and GET /durability reports the log position. It
	// also enables GET /wal, the leader half of replication (DESIGN.md
	// §12): the log streamed as CRC-framed records from a given LSN.
	Journal *durable.Tenant
	// ReadOnly makes this the follower face of replication: every admin
	// mutation is rejected with a typed 403 naming Leader, while the
	// read and matching endpoints keep serving from local snapshots.
	ReadOnly bool
	// Leader is the leader's base URL, reported in read-only rejections
	// so clients know where writes go.
	Leader string
}

// Server handles the HTTP API for one site.
type Server struct {
	site *core.Site
	mux  *http.ServeMux
	opts Options
}

// New wraps a site with default options.
func New(site *core.Site) *Server {
	return NewWithOptions(site, Options{})
}

// NewWithOptions wraps a site.
func NewWithOptions(site *core.Site, opts Options) *Server {
	obs.PublishExpvar()
	s := &Server{site: site, mux: http.NewServeMux(), opts: opts}
	s.mux.HandleFunc("/policies", instrument("policies", s.handlePolicies))
	s.mux.HandleFunc("/policies/", instrument("policy", s.handlePolicyByName))
	s.mux.HandleFunc("/compact/", instrument("compact", s.handleCompact))
	s.mux.HandleFunc("/reference", instrument("reference", s.handleReference))
	s.mux.HandleFunc("/check", instrument("check", s.handleCheck))
	s.mux.HandleFunc("/match", instrument("match", s.handleMatch))
	s.mux.HandleFunc("/matchpolicy", instrument("matchpolicy", s.handleMatchPolicy))
	s.mux.HandleFunc("/matchcookie", instrument("matchcookie", s.handleMatchCookie))
	s.mux.HandleFunc("/matchall", instrument("matchall", s.handleMatchAll))
	s.mux.HandleFunc("/analytics", instrument("analytics", s.handleAnalytics))
	s.mux.HandleFunc("/prefs", instrument("prefs", s.handlePrefs))
	if opts.Journal != nil {
		s.mux.HandleFunc("/durability", instrument("durability", s.handleDurability))
		s.mux.HandleFunc("/wal", instrument("wal", s.handleWAL))
	}
	s.mux.Handle("/metrics", obs.Handler(obs.Default))
	s.mux.Handle("/debug/vars", expvar.Handler())
	s.mux.HandleFunc("/healthz", handleHealthz)
	// A single-site server has no lazy loading: once constructed it is
	// ready, so readiness degenerates to liveness.
	s.mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	return s
}

// statusWriter captures the response status so the instrumentation can
// count errors and tag spans without changing handler signatures.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// instrument wraps a handler with the server's observability (DESIGN.md
// §8): a request counter, an error counter (4xx/5xx responses), and a
// latency histogram, all named server.<handler>.*. When a trace writer is
// installed it also opens a request root span carried on the request
// context, so the engines' child spans and annotations hang off it; the
// span's outcome defaults to ok/error by status, unless a governance
// classification (writeMatchError) set something more precise.
func instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	reqs := obs.GetCounter("server." + name + ".requests")
	errs := obs.GetCounter("server." + name + ".errors")
	lat := obs.GetHistogram("server." + name + ".latency_us")
	return func(w http.ResponseWriter, r *http.Request) {
		reqs.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		var span *obs.Span
		if obs.TracingEnabled() {
			var ctx context.Context
			ctx, span = obs.StartSpan(r.Context(), "server."+name)
			r = r.WithContext(ctx)
		}
		h(sw, r)
		lat.ObserveDuration(time.Since(start))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if status >= 400 {
			errs.Inc()
		}
		if span != nil {
			span.Annotate("status", strconv.Itoa(status))
			if span.Outcome() == "" {
				if status >= 400 {
					span.SetOutcome("error")
				} else {
					span.SetOutcome("ok")
				}
			}
			span.End()
		}
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// HTTPServer wraps the handler in an http.Server with sane timeouts —
// the seed served with a bare ListenAndServe, which never times out
// header reads and so holds a goroutine per stalled connection forever.
// Write timeouts are deliberately left to the per-request deadline
// (Options.RequestTimeout) so long-but-governed matches are not cut off
// mid-response.
func (s *Server) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s,
		ReadHeaderTimeout: defaultReadHeaderTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}

// matchContext derives the context a matching request runs under,
// applying the per-request timeout when configured.
func (s *Server) matchContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	}
	return r.Context(), func() {}
}

// apiError is the JSON error envelope. Reason carries the governance
// classification (budget-exceeded, deadline-exceeded, ...) so clients can
// distinguish "spent too much" from "took too long" without parsing the
// message text.
type apiError struct {
	Error  string   `json:"error"`
	Reason string   `json:"reason,omitempty"`
	Errors []string `json:"errors,omitempty"`
	// Leader names the leader's base URL on read-only-replica
	// rejections, so a client holding a follower address can redirect
	// its write without out-of-band configuration.
	Leader string `json:"leader,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

// classifyMatchError maps a matching failure to its HTTP status and
// governance reason. The distinctions clients care about:
//
//   - 503 budget-exceeded: the query spent its step budget — retrying
//     without a bigger budget (or a simpler preference) will not help.
//   - 504 deadline-exceeded: wall-clock ran out — a retry may succeed on
//     a less loaded server.
//   - 503 canceled: the caller (or shutdown) went away mid-match.
//   - 503 fault-injected: a test fault fired (never in production).
//   - 422 too-complex: the XTABLE path rejected an exact-heavy
//     preference, reproducing the paper's blank Figure 21 cell.
//   - 400 otherwise: the request itself was malformed.
func classifyMatchError(err error) (status int, reason string) {
	switch {
	case errors.Is(err, resource.ErrBudgetExceeded):
		return http.StatusServiceUnavailable, "budget-exceeded"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline-exceeded"
	case errors.Is(err, resource.ErrCanceled), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "canceled"
	case errors.Is(err, faultkit.ErrInjected):
		return http.StatusServiceUnavailable, "fault-injected"
	case errors.Is(err, reldb.ErrTooComplex):
		return http.StatusUnprocessableEntity, "too-complex"
	}
	return http.StatusBadRequest, ""
}

// writeMatchError reports a matching failure, with the governance reason
// in both the JSON envelope and a Server-Timing aborted entry so proxies
// and browser devtools see why the stage was cut short. The reason also
// becomes the request span's outcome, so trace lines distinguish
// budget-exceeded from deadline-exceeded without parsing messages.
func writeMatchError(w http.ResponseWriter, r *http.Request, err error) {
	status, reason := classifyMatchError(err)
	if reason != "" {
		w.Header().Set("Server-Timing", fmt.Sprintf("aborted;desc=%q", reason))
		obs.SpanFromContext(r.Context()).SetOutcome(reason)
	}
	writeJSON(w, status, apiError{Error: err.Error(), Reason: reason})
}

func readBody(w http.ResponseWriter, r *http.Request) (string, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return "", false
	}
	return string(body), true
}

// InstallResponse reports the outcome of a policy installation.
type InstallResponse struct {
	Installed []string `json:"installed"`
}

// journalErrors counts admin mutations that failed at the durability
// layer (logged-and-rolled-back), distinct from plain bad requests.
var obsJournalErrs = obs.GetCounter("server.durability.journal_errors")

// writeJournalError reports a mutation that could not be made durable:
// the site was rolled back, so the client must retry — a 503, not a 400.
func writeJournalError(w http.ResponseWriter, err error) {
	obsJournalErrs.Inc()
	writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error(), Reason: "durability-failed"})
}

// afterMutation cuts an automatic checkpoint when the journal's record
// count since the last one crossed the configured threshold. Checkpoint
// failure does not undo the (already durable) mutation; it is surfaced
// as a counter and retried on the next mutation.
func (s *Server) afterMutation() {
	if s.opts.Journal == nil {
		return
	}
	if err := s.opts.Journal.MaybeCheckpoint(s.site); err != nil {
		obs.GetCounter("server.durability.checkpoint_errors").Inc()
	}
}

// handlePolicies implements POST /policies (install a POLICY or POLICIES
// document) and GET /policies (list installed names). With a journal the
// install is durable — applied and logged — before the 201 is sent.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		if s.rejectReadOnly(w) {
			return
		}
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var names []string
		var err error
		if s.opts.Journal != nil {
			names, err = s.opts.Journal.InstallPolicyXML(s.site, body)
		} else {
			names, err = s.site.InstallPolicyXML(body)
		}
		if err != nil {
			writeMutationError(w, err)
			return
		}
		s.afterMutation()
		writeJSON(w, http.StatusCreated, InstallResponse{Installed: names})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.site.PolicyNames())
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// rejectReadOnly guards a mutation endpoint on a follower: writes are
// rejected with a typed 403 naming the leader. Returns true when the
// request was rejected.
func (s *Server) rejectReadOnly(w http.ResponseWriter) bool {
	if !s.opts.ReadOnly {
		return false
	}
	writeReadOnly(w, s.opts.Leader)
	return true
}

// writeReadOnly is the shared read-only-replica rejection envelope.
func writeReadOnly(w http.ResponseWriter, leader string) {
	writeJSON(w, http.StatusForbidden, apiError{
		Error:  "read-only replica: send writes to the leader",
		Reason: "read-only-replica",
		Leader: leader,
	})
}

// writeMutationError classifies an admin-mutation failure: a durability
// failure (valid mutation, rolled back because it could not be logged)
// is a retryable 503; anything else is the client's bad request.
func writeMutationError(w http.ResponseWriter, err error) {
	var ae *durable.AppendError
	if errors.As(err, &ae) {
		writeJournalError(w, err)
		return
	}
	writeError(w, http.StatusBadRequest, err)
}

// handlePolicyByName implements GET /policies/{name} (fetch the policy
// document, the client-centric fetch path) and DELETE /policies/{name}.
func (s *Server) handlePolicyByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/policies/")
	if name == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("missing policy name"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		xml, err := s.site.PolicyXML(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		// Policy fetches carry the compact form the way a P3P-enabled
		// site would: in the standard response header, so header-only
		// agents never need the document body.
		if cp, cperr := s.site.CompactPolicy(name); cperr == nil && cp != "" {
			w.Header().Set("P3P", fmt.Sprintf("CP=%q", cp))
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, xml)
	case http.MethodDelete:
		if s.rejectReadOnly(w) {
			return
		}
		var err error
		if s.opts.Journal != nil {
			err = s.opts.Journal.RemovePolicy(s.site, name)
		} else {
			err = s.site.RemovePolicy(name)
		}
		if err != nil {
			var ae *durable.AppendError
			if errors.As(err, &ae) {
				writeJournalError(w, err)
				return
			}
			writeError(w, http.StatusNotFound, err)
			return
		}
		s.afterMutation()
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleReference implements POST /reference (install the site's META
// document) and GET /reference (fetch it — the hybrid architecture's
// clients cache it to resolve URIs locally).
func (s *Server) handleReference(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		if s.rejectReadOnly(w) {
			return
		}
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var err error
		if s.opts.Journal != nil {
			err = s.opts.Journal.InstallReferenceFileXML(s.site, body)
		} else {
			err = s.site.InstallReferenceFileXML(body)
		}
		if err != nil {
			writeMutationError(w, err)
			return
		}
		s.afterMutation()
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		xml, err := s.site.ReferenceFileXML()
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, xml)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleCompact implements GET /compact/{name}: the policy's compact
// (CP-header) token form.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/compact/")
	cp, err := s.site.CompactPolicy(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprint(w, cp)
}

// MatchResponse is the JSON form of a decision.
type MatchResponse struct {
	Behavior        string `json:"behavior"`
	RuleIndex       int    `json:"ruleIndex"`
	RuleDescription string `json:"ruleDescription,omitempty"`
	Prompt          bool   `json:"prompt,omitempty"`
	PolicyName      string `json:"policyName"`
	Engine          string `json:"engine"`
	ConvertMicros   int64  `json:"convertMicros"`
	QueryMicros     int64  `json:"queryMicros"`
	// Cached reports the decision was served from the decision cache:
	// the engines never ran, so convert and query are zero by
	// construction, not by speed.
	Cached bool `json:"cached,omitempty"`
}

// setServerTiming reports the decision's conversion/query split as a
// Server-Timing header (milliseconds), so thin clients and proxies see
// where a match spent its time — and, on conversion-cache hits, that
// convert dropped to ~zero.
func setServerTiming(w http.ResponseWriter, d core.Decision) {
	w.Header().Set("Server-Timing", fmt.Sprintf("convert;dur=%.3f, query;dur=%.3f",
		float64(d.Convert.Microseconds())/1000, float64(d.Query.Microseconds())/1000))
}

func toResponse(d core.Decision) MatchResponse {
	return MatchResponse{
		Behavior:        d.Behavior,
		RuleIndex:       d.RuleIndex,
		RuleDescription: d.RuleDescription,
		Prompt:          d.Prompt,
		PolicyName:      d.PolicyName,
		Engine:          d.Engine.ShortName(),
		ConvertMicros:   d.Convert.Microseconds(),
		QueryMicros:     d.Query.Microseconds(),
		Cached:          d.Cached,
	}
}

// handleMatch implements POST /match?uri=/path&engine=sql with the APPEL
// preference as the body: the thin-client entry point.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing uri parameter"))
		return
	}
	engineName := r.URL.Query().Get("engine")
	if engineName == "" {
		engineName = "sql"
	}
	engine, err := core.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pref, ok := readBody(w, r)
	if !ok {
		return
	}
	if err := faultkit.Inject(faultkit.PointServerMatch); err != nil {
		writeMatchError(w, r, err)
		return
	}
	ctx, cancel := s.matchContext(r)
	defer cancel()
	start := time.Now()
	d, err := s.site.MatchURICtx(ctx, pref, uri, engine)
	if err != nil {
		writeMatchError(w, r, err)
		return
	}
	resp := toResponse(d)
	w.Header().Set("X-Match-Duration", time.Since(start).String())
	setServerTiming(w, d)
	writeJSON(w, http.StatusOK, resp)
}

// matchWith factors the three matching endpoints: resolve the engine,
// read the preference body, run the resolver-specific match under the
// request's (possibly deadline-bound) context.
func (s *Server) matchWith(w http.ResponseWriter, r *http.Request,
	match func(ctx context.Context, pref string, engine core.Engine) (core.Decision, error)) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	engineName := r.URL.Query().Get("engine")
	if engineName == "" {
		engineName = "sql"
	}
	engine, err := core.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pref, ok := readBody(w, r)
	if !ok {
		return
	}
	if err := faultkit.Inject(faultkit.PointServerMatch); err != nil {
		writeMatchError(w, r, err)
		return
	}
	ctx, cancel := s.matchContext(r)
	defer cancel()
	d, err := match(ctx, pref, engine)
	if err != nil {
		writeMatchError(w, r, err)
		return
	}
	setServerTiming(w, d)
	writeJSON(w, http.StatusOK, toResponse(d))
}

// handleMatchPolicy implements POST /matchpolicy?policy=name&engine=: the
// hybrid architecture's entry point — the client resolved the reference
// file itself and names the policy directly (Section 4.2).
func (s *Server) handleMatchPolicy(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("policy")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing policy parameter"))
		return
	}
	s.matchWith(w, r, func(ctx context.Context, pref string, engine core.Engine) (core.Decision, error) {
		return s.site.MatchPolicyCtx(ctx, pref, name, engine)
	})
}

// handleMatchCookie implements POST /matchcookie?cookie=name&engine=: the
// server-centric counterpart of IE6's cookie checking, resolved through
// the reference file's COOKIE-INCLUDE patterns.
func (s *Server) handleMatchCookie(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("cookie")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing cookie parameter"))
		return
	}
	s.matchWith(w, r, func(ctx context.Context, pref string, engine core.Engine) (core.Decision, error) {
		return s.site.MatchCookieCtx(ctx, pref, name, engine)
	})
}

// MatchAllResponse is the JSON form of a batch match: one decision per
// successfully matched policy, ordered by policy name, plus the failures
// for the rest. A partially failed batch is still a 200 — per-policy
// failures must not drop the decisions that did complete.
type MatchAllResponse struct {
	Decisions []MatchResponse `json:"decisions"`
	Errors    []string        `json:"errors,omitempty"`
}

// handleMatchAll implements POST /matchall?engine= with the APPEL
// preference as the body: the preference is fanned across every installed
// policy on a worker pool (core.MatchAll), exercising the parallel read
// path in a single request. Site owners use it to preview which policies
// a preference would block.
func (s *Server) handleMatchAll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	engineName := r.URL.Query().Get("engine")
	if engineName == "" {
		engineName = "sql"
	}
	engine, err := core.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pref, ok := readBody(w, r)
	if !ok {
		return
	}
	if err := faultkit.Inject(faultkit.PointServerLoadAll); err != nil {
		writeMatchError(w, r, err)
		return
	}
	ctx, cancel := s.matchContext(r)
	defer cancel()
	start := time.Now()
	decisions, err := s.site.MatchAllCtx(ctx, pref, engine)
	if err != nil && len(decisions) == 0 {
		// Everything failed: report the dominant cause. The full
		// per-policy breakdown rides along in errors.
		status, reason := classifyMatchError(err)
		if reason != "" {
			w.Header().Set("Server-Timing", fmt.Sprintf("aborted;desc=%q", reason))
			obs.SpanFromContext(r.Context()).SetOutcome(reason)
		}
		writeJSON(w, status, apiError{Error: err.Error(), Reason: reason, Errors: splitJoined(err)})
		return
	}
	resp := MatchAllResponse{Decisions: make([]MatchResponse, len(decisions))}
	for i, d := range decisions {
		resp.Decisions[i] = toResponse(d)
	}
	if err != nil {
		resp.Errors = splitJoined(err)
	}
	w.Header().Set("Server-Timing", fmt.Sprintf("total;dur=%.3f", float64(time.Since(start).Microseconds())/1000))
	writeJSON(w, http.StatusOK, resp)
}

// splitJoined flattens an errors.Join result into its parts' messages.
func splitJoined(err error) []string {
	if err == nil {
		return nil
	}
	if joined, ok := err.(interface{ Unwrap() []error }); ok {
		var out []string
		for _, e := range joined.Unwrap() {
			out = append(out, e.Error())
		}
		return out
	}
	return []string{err.Error()}
}

// handleDurability implements GET /durability: the tenant's durable
// position — LSN, log bytes, last checkpoint — as JSON. In multi-tenant
// mode it is reached as GET /sites/{name}/durability.
func (s *Server) handleDurability(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, s.opts.Journal.Status())
}

// handleAnalytics implements GET /analytics: the site-owner view of which
// policies conflict with user preferences (Section 4.2).
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	stats := s.site.Analytics()
	out := make([]map[string]any, 0, len(stats))
	for _, st := range stats {
		out = append(out, map[string]any{
			"policy": st.PolicyName,
			"rule":   st.RuleDescription,
			"blocks": st.Count,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
