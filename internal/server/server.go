// Package server exposes a core.Site over HTTP: the deployed form of the
// paper's server-centric architecture (Figures 5 and 6). Site owners
// install policies and the reference file; thin clients submit their APPEL
// preference with the URI they want to visit and receive the matching
// decision, keeping all parsing, augmentation, and query processing on the
// server.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/reldb"
)

// maxBodyBytes bounds request bodies; P3P documents are small.
const maxBodyBytes = 1 << 20

// Server handles the HTTP API for one site.
type Server struct {
	site *core.Site
	mux  *http.ServeMux
}

// New wraps a site.
func New(site *core.Site) *Server {
	s := &Server{site: site, mux: http.NewServeMux()}
	s.mux.HandleFunc("/policies", s.handlePolicies)
	s.mux.HandleFunc("/policies/", s.handlePolicyByName)
	s.mux.HandleFunc("/compact/", s.handleCompact)
	s.mux.HandleFunc("/reference", s.handleReference)
	s.mux.HandleFunc("/match", s.handleMatch)
	s.mux.HandleFunc("/matchpolicy", s.handleMatchPolicy)
	s.mux.HandleFunc("/matchcookie", s.handleMatchCookie)
	s.mux.HandleFunc("/matchall", s.handleMatchAll)
	s.mux.HandleFunc("/analytics", s.handleAnalytics)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, apiError{Error: err.Error()})
}

func readBody(w http.ResponseWriter, r *http.Request) (string, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, err)
		return "", false
	}
	return string(body), true
}

// InstallResponse reports the outcome of a policy installation.
type InstallResponse struct {
	Installed []string `json:"installed"`
}

// handlePolicies implements POST /policies (install a POLICY or POLICIES
// document) and GET /policies (list installed names).
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		names, err := s.site.InstallPolicyXML(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, InstallResponse{Installed: names})
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.site.PolicyNames())
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handlePolicyByName implements GET /policies/{name} (fetch the policy
// document, the client-centric fetch path) and DELETE /policies/{name}.
func (s *Server) handlePolicyByName(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/policies/")
	if name == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("missing policy name"))
		return
	}
	switch r.Method {
	case http.MethodGet:
		xml, err := s.site.PolicyXML(name)
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, xml)
	case http.MethodDelete:
		if err := s.site.RemovePolicy(name); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleReference implements POST /reference (install the site's META
// document) and GET /reference (fetch it — the hybrid architecture's
// clients cache it to resolve URIs locally).
func (s *Server) handleReference(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		if err := s.site.InstallReferenceFileXML(body); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		xml, err := s.site.ReferenceFileXML()
		if err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
		w.Header().Set("Content-Type", "application/xml")
		fmt.Fprint(w, xml)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleCompact implements GET /compact/{name}: the policy's compact
// (CP-header) token form.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	name := strings.TrimPrefix(r.URL.Path, "/compact/")
	cp, err := s.site.CompactPolicy(name)
	if err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprint(w, cp)
}

// MatchResponse is the JSON form of a decision.
type MatchResponse struct {
	Behavior        string `json:"behavior"`
	RuleIndex       int    `json:"ruleIndex"`
	RuleDescription string `json:"ruleDescription,omitempty"`
	Prompt          bool   `json:"prompt,omitempty"`
	PolicyName      string `json:"policyName"`
	Engine          string `json:"engine"`
	ConvertMicros   int64  `json:"convertMicros"`
	QueryMicros     int64  `json:"queryMicros"`
}

// setServerTiming reports the decision's conversion/query split as a
// Server-Timing header (milliseconds), so thin clients and proxies see
// where a match spent its time — and, on conversion-cache hits, that
// convert dropped to ~zero.
func setServerTiming(w http.ResponseWriter, d core.Decision) {
	w.Header().Set("Server-Timing", fmt.Sprintf("convert;dur=%.3f, query;dur=%.3f",
		float64(d.Convert.Microseconds())/1000, float64(d.Query.Microseconds())/1000))
}

func toResponse(d core.Decision) MatchResponse {
	return MatchResponse{
		Behavior:        d.Behavior,
		RuleIndex:       d.RuleIndex,
		RuleDescription: d.RuleDescription,
		Prompt:          d.Prompt,
		PolicyName:      d.PolicyName,
		Engine:          d.Engine.ShortName(),
		ConvertMicros:   d.Convert.Microseconds(),
		QueryMicros:     d.Query.Microseconds(),
	}
}

// handleMatch implements POST /match?uri=/path&engine=sql with the APPEL
// preference as the body: the thin-client entry point.
func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing uri parameter"))
		return
	}
	engineName := r.URL.Query().Get("engine")
	if engineName == "" {
		engineName = "sql"
	}
	engine, err := core.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pref, ok := readBody(w, r)
	if !ok {
		return
	}
	start := time.Now()
	d, err := s.site.MatchURI(pref, uri, engine)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, reldb.ErrTooComplex) {
			// The XTABLE path can reject exact-heavy preferences.
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err)
		return
	}
	resp := toResponse(d)
	w.Header().Set("X-Match-Duration", time.Since(start).String())
	setServerTiming(w, d)
	writeJSON(w, http.StatusOK, resp)
}

// matchWith factors the three matching endpoints: resolve the engine,
// read the preference body, run the resolver-specific match.
func (s *Server) matchWith(w http.ResponseWriter, r *http.Request,
	match func(pref string, engine core.Engine) (core.Decision, error)) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	engineName := r.URL.Query().Get("engine")
	if engineName == "" {
		engineName = "sql"
	}
	engine, err := core.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pref, ok := readBody(w, r)
	if !ok {
		return
	}
	d, err := match(pref, engine)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, reldb.ErrTooComplex) {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err)
		return
	}
	setServerTiming(w, d)
	writeJSON(w, http.StatusOK, toResponse(d))
}

// handleMatchPolicy implements POST /matchpolicy?policy=name&engine=: the
// hybrid architecture's entry point — the client resolved the reference
// file itself and names the policy directly (Section 4.2).
func (s *Server) handleMatchPolicy(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("policy")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing policy parameter"))
		return
	}
	s.matchWith(w, r, func(pref string, engine core.Engine) (core.Decision, error) {
		return s.site.MatchPolicy(pref, name, engine)
	})
}

// handleMatchCookie implements POST /matchcookie?cookie=name&engine=: the
// server-centric counterpart of IE6's cookie checking, resolved through
// the reference file's COOKIE-INCLUDE patterns.
func (s *Server) handleMatchCookie(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("cookie")
	if name == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing cookie parameter"))
		return
	}
	s.matchWith(w, r, func(pref string, engine core.Engine) (core.Decision, error) {
		return s.site.MatchCookie(pref, name, engine)
	})
}

// MatchAllResponse is the JSON form of a batch match: one decision per
// installed policy, ordered by policy name.
type MatchAllResponse struct {
	Decisions []MatchResponse `json:"decisions"`
}

// handleMatchAll implements POST /matchall?engine= with the APPEL
// preference as the body: the preference is fanned across every installed
// policy on a worker pool (core.MatchAll), exercising the parallel read
// path in a single request. Site owners use it to preview which policies
// a preference would block.
func (s *Server) handleMatchAll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	engineName := r.URL.Query().Get("engine")
	if engineName == "" {
		engineName = "sql"
	}
	engine, err := core.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pref, ok := readBody(w, r)
	if !ok {
		return
	}
	start := time.Now()
	decisions, err := s.site.MatchAll(pref, engine)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, reldb.ErrTooComplex) {
			status = http.StatusUnprocessableEntity
		}
		writeError(w, status, err)
		return
	}
	resp := MatchAllResponse{Decisions: make([]MatchResponse, len(decisions))}
	for i, d := range decisions {
		resp.Decisions[i] = toResponse(d)
	}
	w.Header().Set("Server-Timing", fmt.Sprintf("total;dur=%.3f", float64(time.Since(start).Microseconds())/1000))
	writeJSON(w, http.StatusOK, resp)
}

// handleAnalytics implements GET /analytics: the site-owner view of which
// policies conflict with user preferences (Section 4.2).
func (s *Server) handleAnalytics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	stats := s.site.Analytics()
	out := make([]map[string]any, 0, len(stats))
	for _, st := range stats {
		out = append(out, map[string]any{
			"policy": st.PolicyName,
			"rule":   st.RuleDescription,
			"blocks": st.Count,
		})
	}
	writeJSON(w, http.StatusOK, out)
}
