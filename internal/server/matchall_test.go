package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/workload"
)

// TestMatchAllEndpoint posts one preference to /matchall and expects a
// decision for every installed policy, sorted by name.
func TestMatchAllEndpoint(t *testing.T) {
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	d := workload.Generate(7)
	for _, pol := range d.Policies[:5] {
		if err := site.InstallPolicy(pol); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/matchall?engine=sql", "application/xml",
		strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, "total;dur=") {
		t.Errorf("Server-Timing = %q, want total;dur=", st)
	}
	var out MatchAllResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Decisions) != 5 {
		t.Fatalf("got %d decisions, want 5", len(out.Decisions))
	}
	for i, dec := range out.Decisions {
		if dec.Behavior == "" {
			t.Errorf("decision %d has no behavior", i)
		}
		if i > 0 && out.Decisions[i-1].PolicyName > dec.PolicyName {
			t.Errorf("decisions not sorted: %q > %q", out.Decisions[i-1].PolicyName, dec.PolicyName)
		}
	}
}

// TestServerTimingHeader checks the convert/query split is surfaced on
// the single-match endpoints.
func TestServerTimingHeader(t *testing.T) {
	_, c := testServer(t)
	installVolga(t, c)

	resp, err := http.Post(c.base+"/matchpolicy?policy=volga&engine=sql", "application/xml",
		strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	st := resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "convert;dur=") || !strings.Contains(st, "query;dur=") {
		t.Errorf("Server-Timing = %q, want convert;dur= and query;dur=", st)
	}
}
