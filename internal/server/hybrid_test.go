package server

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"p3pdb/internal/appel"
)

func installBookstore(t testing.TB, c *Client) {
	t.Helper()
	policies := `<POLICIES xmlns="http://www.w3.org/2002/01/P3Pv1">` +
		`<POLICY name="strict"><STATEMENT>` +
		`<PURPOSE><current/></PURPOSE><RECIPIENT><ours/></RECIPIENT>` +
		`<RETENTION><stated-purpose/></RETENTION>` +
		`<DATA-GROUP><DATA ref="#user.name"/></DATA-GROUP>` +
		`</STATEMENT></POLICY>` +
		`<POLICY name="loose"><STATEMENT>` +
		`<PURPOSE><telemarketing/></PURPOSE><RECIPIENT><unrelated/></RECIPIENT>` +
		`<RETENTION><indefinitely/></RETENTION>` +
		`<DATA-GROUP><DATA ref="#user.home-info.telecom"/></DATA-GROUP>` +
		`</STATEMENT></POLICY>` +
		`</POLICIES>`
	if _, err := c.InstallPolicies(policies); err != nil {
		t.Fatal(err)
	}
	err := c.InstallReferenceFile(`<META xmlns="http://www.w3.org/2002/01/P3Pv1">
	  <POLICY-REFERENCES>
	    <POLICY-REF about="#strict"><INCLUDE>/account/*</INCLUDE><COOKIE-INCLUDE name="session*"/></POLICY-REF>
	    <POLICY-REF about="#loose"><INCLUDE>/*</INCLUDE><COOKIE-INCLUDE name="track*"/></POLICY-REF>
	  </POLICY-REFERENCES></META>`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestHybridClientResolvesLocally(t *testing.T) {
	ts, owner := testServer(t)
	installBookstore(t, owner)

	h, err := NewHybridClient(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	h.Preference = appel.JanePreferenceXML

	// Three pages under the same policy: one server call.
	for _, page := range []string{"/account/home", "/account/orders", "/account/settings"} {
		d, err := h.CanVisit(page)
		if err != nil {
			t.Fatal(err)
		}
		if d.PolicyName != "strict" || d.Behavior != "request" {
			t.Errorf("%s: %+v", page, d)
		}
	}
	if h.ServerCalls != 1 {
		t.Errorf("server calls = %d, want 1 (cached per-policy decision)", h.ServerCalls)
	}

	// A page under the other policy: one more call, blocked.
	d, err := h.CanVisit("/promo")
	if err != nil {
		t.Fatal(err)
	}
	if d.PolicyName != "loose" || d.Behavior != "block" {
		t.Errorf("/promo: %+v", d)
	}
	if h.ServerCalls != 2 {
		t.Errorf("server calls = %d, want 2", h.ServerCalls)
	}

	// Uncovered URI resolves client-side to an error without a call.
	// ("/promo" matched loose's /*; nothing is truly uncovered here, so
	// test cache invalidation instead.)
	h.InvalidateCache()
	if _, err := h.CanVisit("/account/home"); err != nil {
		t.Fatal(err)
	}
	if h.ServerCalls != 3 {
		t.Errorf("server calls after invalidation = %d, want 3", h.ServerCalls)
	}
}

func TestHybridClientNoReferenceFile(t *testing.T) {
	ts, _ := testServer(t)
	if _, err := NewHybridClient(ts.URL); err == nil {
		t.Error("hybrid client should fail without a reference file")
	}
}

func TestMatchCookieEndpoint(t *testing.T) {
	ts, owner := testServer(t)
	installBookstore(t, owner)

	post := func(cookie string) (MatchResponse, int) {
		resp, err := http.Post(ts.URL+"/matchcookie?cookie="+cookie, "application/xml",
			strings.NewReader(appel.JanePreferenceXML))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out MatchResponse
		_ = decodeJSON(resp.Body, &out)
		return out, resp.StatusCode
	}

	d, code := post("session_abc")
	if code != http.StatusOK || d.PolicyName != "strict" || d.Behavior != "request" {
		t.Errorf("session cookie: %d %+v", code, d)
	}
	d, code = post("track_me")
	if code != http.StatusOK || d.PolicyName != "loose" || d.Behavior != "block" {
		t.Errorf("tracking cookie: %d %+v", code, d)
	}
	_, code = post("unknown_cookie")
	if code != http.StatusBadRequest {
		t.Errorf("uncovered cookie: %d", code)
	}
	_, code = post("")
	if code != http.StatusBadRequest {
		t.Errorf("missing cookie param: %d", code)
	}
}

func TestCompactEndpoint(t *testing.T) {
	ts, owner := testServer(t)
	installBookstore(t, owner)
	resp, err := http.Get(ts.URL + "/compact/loose")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	cp := string(body)
	for _, want := range []string{"TEL", "UNRa", "IND", "PHY"} {
		if !strings.Contains(cp, want) {
			t.Errorf("compact policy missing %q: %s", want, cp)
		}
	}
	resp2, err := http.Get(ts.URL + "/compact/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("missing policy: %d", resp2.StatusCode)
	}
}

func TestReferenceFetch(t *testing.T) {
	ts, owner := testServer(t)

	// Before installation: 404.
	resp, err := http.Get(ts.URL + "/reference")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /reference before install: %d", resp.StatusCode)
	}

	installBookstore(t, owner)
	resp, err = http.Get(ts.URL + "/reference")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "POLICY-REF") {
		t.Errorf("reference body: %s", body)
	}
}

func TestMatchPolicyEndpointErrors(t *testing.T) {
	ts, owner := testServer(t)
	installBookstore(t, owner)
	resp, err := http.Post(ts.URL+"/matchpolicy", "application/xml",
		strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing policy param: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/matchpolicy?policy=ghost", "application/xml",
		strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown policy: %d", resp.StatusCode)
	}
}
