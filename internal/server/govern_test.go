package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/p3p"
)

// governedServer builds a server with explicit site/server options.
func governedServer(t testing.TB, siteOpts core.Options, srvOpts Options) *httptest.Server {
	t.Helper()
	site, err := core.NewSiteWithOptions(siteOpts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(site, srvOpts))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(p3pVolga); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallReferenceFile(volgaRef); err != nil {
		t.Fatal(err)
	}
	return ts
}

func postMatch(t testing.TB, ts *httptest.Server, path, pref string) (*http.Response, apiError) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/xml", strings.NewReader(pref))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	return resp, e
}

// TestInjectedRelDBFaultYieldsStructured5xx is the acceptance check: a
// fault injected into reldb query execution during /match comes back as
// a structured 503 with the fault-injected reason, not a 200 and not an
// opaque 400.
func TestInjectedRelDBFaultYieldsStructured5xx(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	ts := governedServer(t, core.Options{}, Options{})
	if err := faultkit.Enable(faultkit.PointRelDBQuery + ":error"); err != nil {
		t.Fatal(err)
	}
	resp, e := postMatch(t, ts, "/match?uri=/books/1&engine=sql", appel.JanePreferenceXML)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %+v", resp.StatusCode, e)
	}
	if e.Reason != "fault-injected" {
		t.Fatalf("reason = %q, want fault-injected (error %q)", e.Reason, e.Error)
	}
	if !strings.Contains(resp.Header.Get("Server-Timing"), "aborted") {
		t.Fatalf("Server-Timing lacks aborted entry: %q", resp.Header.Get("Server-Timing"))
	}

	// Disarmed, the same request succeeds.
	faultkit.Reset()
	resp2, err := http.Post(ts.URL+"/match?uri=/books/1&engine=sql", "application/xml",
		strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after reset: status %d", resp2.StatusCode)
	}
}

// TestBudgetExceededIs503: a site budget of one step cannot complete any
// match; the server reports 503 budget-exceeded, distinguishing "spent
// too much" from a timeout.
func TestBudgetExceededIs503(t *testing.T) {
	ts := governedServer(t, core.Options{MatchBudget: 1}, Options{})
	resp, e := postMatch(t, ts, "/match?uri=/books/1&engine=sql", appel.JanePreferenceXML)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %+v", resp.StatusCode, e)
	}
	if e.Reason != "budget-exceeded" {
		t.Fatalf("reason = %q, want budget-exceeded", e.Reason)
	}
}

// TestDeadlineExceededIs504: a request timeout shorter than an injected
// evaluation latency turns into 504 deadline-exceeded — the same
// underlying governor as cancellation, but distinguishable by clients.
func TestDeadlineExceededIs504(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	ts := governedServer(t, core.Options{}, Options{RequestTimeout: 20 * time.Millisecond})
	// Sleep past the deadline inside conversion; the meter's next poll
	// sees the expired context.
	if err := faultkit.Enable(faultkit.PointConvFill + ":latency:60ms"); err != nil {
		t.Fatal(err)
	}
	resp, e := postMatch(t, ts, "/match?uri=/books/1&engine=sql", appel.JanePreferenceXML)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %+v", resp.StatusCode, e)
	}
	if e.Reason != "deadline-exceeded" {
		t.Fatalf("reason = %q, want deadline-exceeded", e.Reason)
	}
}

// TestMatchAllPartialFailure: per-policy faults surface in the matchall
// response's errors array while the completed decisions still come back
// with a 200.
func TestMatchAllPartialFailure(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	site, err := core.NewSiteWithOptions(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(p3pVolga); err != nil {
		t.Fatal(err)
	}

	// volga is the only policy; failing its conversion fails the whole
	// batch — exercise the all-failed path first.
	if err := faultkit.Enable(faultkit.PointConvFill + ":error"); err != nil {
		t.Fatal(err)
	}
	resp, e := postMatch(t, ts, "/matchall?engine=xtable", appel.JanePreferenceXML)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-failed batch: status %d, want 503; %+v", resp.StatusCode, e)
	}
	if e.Reason != "fault-injected" || len(e.Errors) != 1 {
		t.Fatalf("all-failed batch: %+v", e)
	}

	// Disarmed: full success, no errors array.
	faultkit.Reset()
	resp2, err := http.Post(ts.URL+"/matchall?engine=xtable", "application/xml",
		strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("clean batch: status %d", resp2.StatusCode)
	}
	var mr MatchAllResponse
	if err := json.NewDecoder(resp2.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if len(mr.Decisions) != 1 || len(mr.Errors) != 0 {
		t.Fatalf("clean batch: %+v", mr)
	}
}

// TestHTTPServerHasTimeouts: the listener the binary deploys must carry
// a read-header timeout — the seed shipped a bare ListenAndServe.
func TestHTTPServerHasTimeouts(t *testing.T) {
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	srv := New(site).HTTPServer(":0")
	if srv.ReadHeaderTimeout <= 0 {
		t.Fatal("HTTPServer has no ReadHeaderTimeout")
	}
	if srv.Handler == nil {
		t.Fatal("HTTPServer has no handler")
	}
}

var p3pVolga = p3p.VolgaPolicyXML

const volgaRef = `<META xmlns="http://www.w3.org/2002/01/P3Pv1">
  <POLICY-REFERENCES>
    <POLICY-REF about="/P3P/Policies.xml#volga"><INCLUDE>/*</INCLUDE></POLICY-REF>
  </POLICY-REFERENCES></META>`
