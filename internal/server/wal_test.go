package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"net/http/httptest"

	"p3pdb/internal/durable"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/registry"
)

// streamWAL fetches /wal and drains the framed response, returning the
// records, the X-WAL-LSN header, and the stream's terminal error.
func streamWAL(t *testing.T, base, query string) ([]durable.Record, uint64, error) {
	t.Helper()
	resp, err := http.Get(base + "/wal" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("/wal%s: %d %s", query, resp.StatusCode, body)
	}
	var lsn uint64
	fmt.Sscan(resp.Header.Get("X-WAL-LSN"), &lsn)
	sr := durable.NewStreamReader(resp.Body)
	var recs []durable.Record
	for {
		rec, err := sr.Next()
		if err != nil {
			if err == io.EOF {
				err = nil
			}
			return recs, lsn, err
		}
		recs = append(recs, *rec)
	}
}

// TestWALStream covers the leader's stream endpoint: full history from
// zero, cursor skipping, the snapshot-bootstrap record after a
// checkpoint truncates the log, and parameter validation.
func TestWALStream(t *testing.T) {
	ts, site, journal, _ := durableServer(t, t.TempDir())
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallPolicies(`<POLICY name="q"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`); err != nil {
		t.Fatal(err)
	}

	recs, lsn, err := streamWAL(t, ts.URL, "?from=0")
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if len(recs) != 2 || recs[0].Op != durable.OpInstall || !strings.Contains(recs[1].Doc, `name="q"`) {
		t.Fatalf("full stream wrong: %+v", recs)
	}
	if lsn != journal.Status().LSN {
		t.Fatalf("X-WAL-LSN %d, journal head %d", lsn, journal.Status().LSN)
	}

	// A cursor at the first record's LSN ships only the second.
	recs, _, err = streamWAL(t, ts.URL, fmt.Sprintf("?from=%d", recs[0].LSN))
	if err != nil || len(recs) != 1 || !strings.Contains(recs[0].Doc, `name="q"`) {
		t.Fatalf("cursor stream wrong: %+v, %v", recs, err)
	}

	// Checkpoint truncates the log: a from-zero follower now gets one
	// OpState record carrying the whole snapshot instead of history.
	if err := journal.Checkpoint(site); err != nil {
		t.Fatal(err)
	}
	recs, _, err = streamWAL(t, ts.URL, "?from=0")
	if err != nil {
		t.Fatalf("post-checkpoint stream: %v", err)
	}
	if len(recs) != 1 || recs[0].Op != durable.OpState || len(recs[0].Docs) != 2 {
		t.Fatalf("expected one state record with 2 policies: %+v", recs)
	}
	// A caught-up cursor gets an empty, headers-only stream.
	recs, lsn, err = streamWAL(t, ts.URL, fmt.Sprintf("?from=%d", lsn))
	if err != nil || len(recs) != 0 || lsn == 0 {
		t.Fatalf("caught-up stream: %+v lsn=%d %v", recs, lsn, err)
	}

	for _, q := range []string{"?from=nope", "?wait=nope"} {
		resp, err := http.Get(ts.URL + "/wal" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/wal%s: %d, want 400", q, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/wal", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /wal: %d, want 405", resp.StatusCode)
	}
}

// TestWALStreamLongPoll checks wait= blocks until a record lands and
// ships it, rather than returning empty and forcing a reconnect.
func TestWALStreamLongPoll(t *testing.T) {
	ts, _, journal, _ := durableServer(t, t.TempDir())
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}
	head := journal.Status().LSN

	type result struct {
		recs []durable.Record
		err  error
	}
	done := make(chan result, 1)
	go func() {
		recs, _, err := streamWAL(t, ts.URL, fmt.Sprintf("?from=%d&wait=10s", head))
		done <- result{recs, err}
	}()
	// Let the poller park, then land a record.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.InstallPolicies(`<POLICY name="late"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.err != nil || len(r.recs) != 1 || !strings.Contains(r.recs[0].Doc, `name="late"`) {
			t.Fatalf("long-poll result: %+v, %v", r.recs, r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never returned")
	}

	// An expired wait with nothing new returns an empty stream.
	recs, _, err := streamWAL(t, ts.URL, fmt.Sprintf("?from=%d&wait=10ms", journal.Status().LSN))
	if err != nil || len(recs) != 0 {
		t.Fatalf("expired wait: %+v, %v", recs, err)
	}
}

// TestWALStreamFaultCutsMidFrame arms the replica.stream point: the
// response carries half a frame, which the stream reader must classify
// as torn — the shape a dying leader leaves a follower holding.
func TestWALStreamFaultCutsMidFrame(t *testing.T) {
	ts, _, _, _ := durableServer(t, t.TempDir())
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}
	faultkit.Reset()
	t.Cleanup(faultkit.Reset)
	if err := faultkit.Enable(faultkit.PointReplicaStream + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	recs, _, err := streamWAL(t, ts.URL, "?from=0")
	if err == nil || !strings.Contains(err.Error(), "torn") {
		t.Fatalf("cut stream: %d records, err %v (want torn)", len(recs), err)
	}
}

// TestReplicationStatusLeader covers the leader's /replication/status:
// one entry per journaled resident tenant, role leader.
func TestReplicationStatusLeader(t *testing.T) {
	store, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(registry.Options{Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reg.Close() })
	ts := httptest.NewServer(NewMulti(reg))
	t.Cleanup(ts.Close)
	if err := NewClient(ts.URL).CreateSite("a.example"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(ts.URL + "/sites/a.example").InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/replication/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ReplicationStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "leader" || !st.Ready {
		t.Fatalf("leader status: %+v", st)
	}
	tr, ok := st.Tenants["a.example"]
	if !ok || tr.LSN == 0 || !tr.Synced {
		t.Fatalf("tenant position: %+v", st.Tenants)
	}
	// The per-tenant alias serves the same stream.
	recs, _, err := streamWAL(t, ts.URL+"/sites/a.example", "?from=0")
	if err != nil || len(recs) != 1 {
		t.Fatalf("multi-tenant wal: %+v, %v", recs, err)
	}
}
