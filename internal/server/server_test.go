package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/core"
	"p3pdb/internal/p3p"
	"p3pdb/internal/workload"
)

func testServer(t testing.TB) (*httptest.Server, *Client) {
	t.Helper()
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(site))
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

func installVolga(t testing.TB, c *Client) {
	t.Helper()
	if _, err := c.InstallPolicies(p3p.VolgaPolicyXML); err != nil {
		t.Fatal(err)
	}
	err := c.InstallReferenceFile(`<META xmlns="http://www.w3.org/2002/01/P3Pv1">
	  <POLICY-REFERENCES>
	    <POLICY-REF about="/P3P/Policies.xml#volga"><INCLUDE>/*</INCLUDE></POLICY-REF>
	  </POLICY-REFERENCES></META>`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEndToEndMatch(t *testing.T) {
	_, c := testServer(t)
	installVolga(t, c)
	c.Preference = appel.JanePreferenceXML
	for _, engine := range []string{"native", "sql", "xtable", "xquery"} {
		c.Engine = engine
		d, err := c.CanVisit("/books/42")
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		if d.Behavior != "request" || d.PolicyName != "volga" {
			t.Errorf("%s: %+v", engine, d)
		}
		if d.Engine != engine {
			t.Errorf("engine echoed as %q", d.Engine)
		}
	}
}

func TestPoliciesListAndFetch(t *testing.T) {
	_, c := testServer(t)
	installVolga(t, c)
	names, err := c.Policies()
	if err != nil || len(names) != 1 || names[0] != "volga" {
		t.Fatalf("Policies: %v %v", names, err)
	}
	xml, err := c.FetchPolicy("volga")
	if err != nil || !strings.Contains(xml, "<POLICY") {
		t.Fatalf("FetchPolicy: %v", err)
	}
	if _, err := c.FetchPolicy("ghost"); err == nil {
		t.Error("missing policy should 404")
	}
}

func TestBlockedDecisionAndAnalytics(t *testing.T) {
	_, c := testServer(t)
	installVolga(t, c)
	c.Preference = `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
	  <appel:RULE behavior="block" description="no contact purpose">
	    <POLICY><STATEMENT><PURPOSE appel:connective="or"><contact required="*"/></PURPOSE></STATEMENT></POLICY>
	  </appel:RULE>
	  <appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	d, err := c.CanVisit("/checkout")
	if err != nil {
		t.Fatal(err)
	}
	if d.Behavior != "block" || d.RuleDescription != "no contact purpose" {
		t.Errorf("decision: %+v", d)
	}
	rows, err := c.Analytics()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Policy != "volga" || rows[0].Blocks != 1 {
		t.Errorf("analytics: %+v", rows)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts, c := testServer(t)
	// Match without a reference file.
	c.Preference = appel.JanePreferenceXML
	if _, err := c.CanVisit("/x"); err == nil {
		t.Error("match without reference file should fail")
	}
	// Bad policy document.
	if _, err := c.InstallPolicies("<not-a-policy/>"); err == nil {
		t.Error("bad policy should fail")
	}
	// Bad engine name.
	resp, err := http.Post(ts.URL+"/match?uri=/x&engine=warp", "application/xml", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad engine: status %d", resp.StatusCode)
	}
	// Missing uri parameter.
	resp, err = http.Post(ts.URL+"/match", "application/xml", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing uri: status %d", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Get(ts.URL + "/match")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /match: status %d", resp.StatusCode)
	}
	// Health check.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}

func TestDeletePolicy(t *testing.T) {
	ts, c := testServer(t)
	installVolga(t, c)
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/policies/volga", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete: %d", resp.StatusCode)
	}
	names, err := c.Policies()
	if err != nil || len(names) != 0 {
		t.Errorf("after delete: %v %v", names, err)
	}
}

func TestTooComplexPreferenceOverHTTP(t *testing.T) {
	_, c := testServer(t)
	installVolga(t, c)
	medium, ok := workload.PreferenceByLevel("Medium")
	if !ok {
		t.Fatal("no Medium preference")
	}
	c.Preference = medium.XML
	c.Engine = "xtable"
	_, err := c.CanVisit("/x")
	if err == nil || !strings.Contains(err.Error(), "422") {
		t.Errorf("expected 422 for too-complex preference, got %v", err)
	}
	// The SQL engine handles the same preference.
	c.Engine = "sql"
	if _, err := c.CanVisit("/x"); err != nil {
		t.Errorf("sql engine should handle Medium: %v", err)
	}
}
