// The /check endpoint is the paper's deployment scenario (§2) served
// end to end: reference-file lookup picks the applicable policy for a
// URL and/or cookie, the compact-policy summary tries to prove the
// request safe without running an engine, and only an inconclusive
// summary pays for full matching. The response carries the policy's
// compact form in the standard P3P response header, the way a
// compact-policy-aware user agent would receive it.
package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"

	"p3pdb/internal/core"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/workload"
)

// agentLevels maps the load generator's user-agent attitude names onto
// the JRC preference levels (workload.Levels) they correspond to.
var agentLevels = map[string]string{
	"apathetic": "Very Low",
	"mild":      "Low",
	"paranoid":  "High",
}

// resolvePreference turns a level query parameter into a server-side
// preference: either an agent attitude (apathetic, mild, paranoid) or a
// JRC level name (Very Low ... Very High), case-insensitively.
func resolvePreference(level string) (workload.Preference, bool) {
	if jrc, ok := agentLevels[strings.ToLower(level)]; ok {
		level = jrc
	}
	for _, l := range workload.Levels {
		if strings.EqualFold(l, level) {
			return workload.PreferenceByLevel(l)
		}
	}
	return workload.Preference{}, false
}

// CheckPartResponse is one half of a check (the URL or the cookie).
type CheckPartResponse struct {
	Target         string         `json:"target"`
	Allowed        bool           `json:"allowed"`
	FastPath       bool           `json:"fastPath"`
	FallbackReason string         `json:"fallbackReason,omitempty"`
	PolicyName     string         `json:"policyName"`
	CP             string         `json:"cp,omitempty"`
	Decision       *MatchResponse `json:"decision,omitempty"`
}

// CheckResponse is the JSON form of a protocol-loop check. Allowed is
// the conjunction of the parts: a visit is safe only if both the page
// and its cookie traffic are.
type CheckResponse struct {
	Allowed    bool               `json:"allowed"`
	Generation uint64             `json:"generation"`
	Level      string             `json:"level,omitempty"`
	URL        *CheckPartResponse `json:"url,omitempty"`
	Cookie     *CheckPartResponse `json:"cookie,omitempty"`
}

func toCheckPart(target string, res core.CheckResult) *CheckPartResponse {
	p := &CheckPartResponse{
		Target:         target,
		Allowed:        res.Allowed,
		FastPath:       res.FastPath,
		FallbackReason: res.FallbackReason,
		PolicyName:     res.PolicyName,
		CP:             res.CP,
	}
	if res.Decision != nil {
		d := toResponse(*res.Decision)
		p.Decision = &d
	}
	return p
}

// handleCheck implements the protocol-loop endpoint:
//
//	GET  /check?url=/path&cookie=name&level=mild&engine=sql
//	POST /check?url=/path&cookie=name&engine=sql   (APPEL body)
//
// At least one of url/cookie is required. GET resolves the preference
// from a named level (an agent attitude or a JRC profile); POST takes
// the visitor's own APPEL preference as the body. The applicable
// policy's compact form rides back in the P3P response header.
func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	url, cookie := q.Get("url"), q.Get("cookie")
	if url == "" && cookie == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing url or cookie parameter"))
		return
	}
	engineName := q.Get("engine")
	if engineName == "" {
		engineName = "sql"
	}
	engine, err := core.ParseEngine(engineName)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var pref, level string
	switch r.Method {
	case http.MethodGet:
		level = q.Get("level")
		if level == "" {
			level = "mild"
		}
		p, ok := resolvePreference(level)
		if !ok {
			writeError(w, http.StatusBadRequest, fmt.Errorf("unknown preference level %q", level))
			return
		}
		level, pref = p.Level, p.XML
	case http.MethodPost:
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		if strings.TrimSpace(body) == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing APPEL preference body"))
			return
		}
		pref = body
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if err := faultkit.Inject(faultkit.PointServerMatch); err != nil {
		writeMatchError(w, r, err)
		return
	}
	ctx, cancel := s.matchContext(r)
	defer cancel()
	resp := CheckResponse{Allowed: true, Level: level}
	check := func(target string, run func(context.Context, string, string, core.Engine) (core.CheckResult, error)) (*CheckPartResponse, bool) {
		res, err := run(ctx, pref, target, engine)
		if err != nil {
			writeMatchError(w, r, err)
			return nil, false
		}
		resp.Allowed = resp.Allowed && res.Allowed
		resp.Generation = res.Generation
		if res.CP != "" && w.Header().Get("P3P") == "" {
			w.Header().Set("P3P", fmt.Sprintf("CP=%q", res.CP))
		}
		return toCheckPart(target, res), true
	}
	if url != "" {
		part, ok := check(url, s.site.CheckURICtx)
		if !ok {
			return
		}
		resp.URL = part
	}
	if cookie != "" {
		part, ok := check(cookie, s.site.CheckCookieCtx)
		if !ok {
			return
		}
		resp.Cookie = part
	}
	writeJSON(w, http.StatusOK, resp)
}
