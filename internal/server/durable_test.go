package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"p3pdb/internal/core"
	"p3pdb/internal/durable"
	"p3pdb/internal/faultkit"
	"p3pdb/internal/registry"
)

const tinyPolicyDoc = `<POLICY name="p"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`

// durableServer builds a single-site server journaled into a durable
// store, returning the store so tests can restart against it.
func durableServer(t *testing.T, stateDir string) (*httptest.Server, *core.Site, *durable.Tenant, *durable.Store) {
	t.Helper()
	store, err := durable.Open(stateDir, durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	journal, err := store.OpenTenant("default")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { journal.Close() })
	if err := journal.ReplayInto(site); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(site, Options{Journal: journal}))
	t.Cleanup(ts.Close)
	return ts, site, journal, store
}

// TestAdminMutationsSurviveRestart: a 2xx from the admin API means the
// mutation is in the log, so a restarted server serves it.
func TestAdminMutationsSurviveRestart(t *testing.T) {
	stateDir := t.TempDir()
	ts, _, journal, store := durableServer(t, stateDir)
	c := NewClient(ts.URL)

	if _, err := c.InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}
	if st := journal.Status(); st.LSN != 1 {
		t.Fatalf("2xx without a logged record: %+v", st)
	}
	if err := journal.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": recover a fresh site from the same store.
	journal2, err := store.OpenTenant("default")
	if err != nil {
		t.Fatal(err)
	}
	defer journal2.Close()
	site2, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	if err := journal2.ReplayInto(site2); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(NewWithOptions(site2, Options{Journal: journal2}))
	defer ts2.Close()
	names, err := NewClient(ts2.URL).Policies()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "p" {
		t.Fatalf("restarted server policies = %v", names)
	}
}

// TestDurabilityEndpoint: GET /durability reports the journal position.
func TestDurabilityEndpoint(t *testing.T) {
	ts, _, _, _ := durableServer(t, t.TempDir())
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/durability")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /durability: %d", resp.StatusCode)
	}
	var st durable.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "default" || st.LSN != 1 || st.LogBytes == 0 || st.Fsync != "never" {
		t.Fatalf("durability status = %+v", st)
	}
}

// TestNoDurabilityRouteWithoutJournal: the endpoint only exists when the
// server is journaled.
func TestNoDurabilityRouteWithoutJournal(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/durability")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /durability without journal: %d", resp.StatusCode)
	}
}

// TestAppendFailureIs503: a mutation the log cannot accept must not be
// acknowledged — the client sees a 503 with reason durability-failed and
// the site still serves its previous state.
func TestAppendFailureIs503(t *testing.T) {
	t.Cleanup(faultkit.Reset)
	ts, site, _, _ := durableServer(t, t.TempDir())

	if err := faultkit.Enable(faultkit.PointDurableWrite + ":error:times=1"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/policies", "application/xml", strings.NewReader(tinyPolicyDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append failure returned %d, want 503", resp.StatusCode)
	}
	var apiErr struct {
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Reason != "durability-failed" {
		t.Fatalf("reason = %q", apiErr.Reason)
	}
	if names := site.PolicyNames(); len(names) != 0 {
		t.Fatalf("failed mutation left state behind: %v", names)
	}

	// A bad document is still the client's fault, not the log's.
	resp2, err := http.Post(ts.URL+"/policies", "application/xml", strings.NewReader("<garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad document returned %d, want 400", resp2.StatusCode)
	}
}

// TestDeleteDurable: DELETE routes through the journal; an unknown name
// is still a 404.
func TestDeleteDurable(t *testing.T) {
	ts, _, journal, _ := durableServer(t, t.TempDir())
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/policies/p", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: %d", resp.StatusCode)
	}
	if st := journal.Status(); st.LSN != 2 {
		t.Fatalf("delete not logged: %+v", st)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/policies/ghost", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE ghost: %d", resp.StatusCode)
	}
}

// TestAutoCheckpointOverHTTP: CheckpointEvery mutations through the
// admin API cut a snapshot without any explicit call.
func TestAutoCheckpointOverHTTP(t *testing.T) {
	store, err := durable.Open(t.TempDir(), durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	site, err := core.NewSite()
	if err != nil {
		t.Fatal(err)
	}
	journal, err := store.OpenTenant("default")
	if err != nil {
		t.Fatal(err)
	}
	defer journal.Close()
	if err := journal.ReplayInto(site); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithOptions(site, Options{Journal: journal}))
	defer ts.Close()
	c := NewClient(ts.URL)
	if _, err := c.InstallPolicies(tinyPolicyDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := c.InstallPolicies(`<POLICY name="q"><STATEMENT><NON-IDENTIFIABLE/></STATEMENT></POLICY>`); err != nil {
		t.Fatal(err)
	}
	if st := journal.Status(); st.CheckpointLSN != 2 || st.LogBytes != 0 {
		t.Fatalf("auto checkpoint did not fire: %+v", st)
	}
}

// TestMultiServerDurability: tenant admin mutations through the
// multi-tenant API are durable, /sites/{name}/durability answers, and a
// rebuilt registry over the same store serves the mutated state.
func TestMultiServerDurability(t *testing.T) {
	root, stateDir := t.TempDir(), t.TempDir()
	store, err := durable.Open(stateDir, durable.Options{Fsync: durable.FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	reg, err := registry.New(registry.Options{Dir: root, Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMulti(reg))
	defer ts.Close()

	// Create a dynamic tenant and install a policy through its API.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/sites/dyn.example", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT /sites: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/sites/dyn.example/policies", "application/xml", strings.NewReader(tinyPolicyDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST policies: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/sites/dyn.example/durability")
	if err != nil {
		t.Fatal(err)
	}
	var st durable.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "dyn.example" || st.LSN != 1 {
		t.Fatalf("tenant durability status = %+v", st)
	}

	// POST /durability is not a thing; the status endpoint is read-only.
	resp, err = http.Post(ts.URL+"/sites/dyn.example/durability", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /durability: %d", resp.StatusCode)
	}

	// A second durable tenant, created and immediately deleted — the
	// deletion must hold across the restart below.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/sites/gone.example", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/sites/gone.example", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE /sites: %d", resp.StatusCode)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the hosting process: same store, fresh registry + server.
	reg2, err := registry.New(registry.Options{Dir: root, Durable: store})
	if err != nil {
		t.Fatal(err)
	}
	defer reg2.Close()
	ts2 := httptest.NewServer(NewMulti(reg2))
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/sites/dyn.example/policies")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	err = json.NewDecoder(resp.Body).Decode(&names)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "p" {
		t.Fatalf("restarted multi-tenant policies = %v", names)
	}

	// The restarted listing has the surviving tenant and not the deleted
	// one.
	resp, err = http.Get(ts2.URL + "/sites")
	if err != nil {
		t.Fatal(err)
	}
	var sites []string
	err = json.NewDecoder(resp.Body).Decode(&sites)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 1 || sites[0] != "dyn.example" {
		t.Fatalf("GET /sites after restart = %v", sites)
	}
}
