package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/obs"
)

// fetchMetrics reads GET /metrics?format=json into an obs.Snapshot.
func fetchMetrics(t *testing.T, baseURL string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	var s obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatalf("metrics JSON: %v", err)
	}
	return s
}

// TestMetricsReconcileWithWorkload is the end-to-end metrics invariant:
// after a known workload — a fixed number of /match requests per engine
// — the /metrics deltas must reconcile exactly. server.match.requests
// grows by the total requests issued, and each core.match.<engine>.total
// grows by that engine's share; the sum of per-engine match counts
// equals the request count. The registry is process-global and other
// tests run in this package, so everything asserts on deltas, and the
// workload is quiesced (requests completed) before the second snapshot.
func TestMetricsReconcileWithWorkload(t *testing.T) {
	ts, c := testServer(t)
	installVolga(t, c)
	c.Preference = appel.JanePreferenceXML

	engines := []string{"native", "sql", "xtable", "xquery"}
	const perEngine = 5

	before := fetchMetrics(t, ts.URL)
	for _, engine := range engines {
		c.Engine = engine
		for i := 0; i < perEngine; i++ {
			if _, err := c.CanVisit("/books/42"); err != nil {
				t.Fatalf("%s match %d: %v", engine, i, err)
			}
		}
	}
	after := fetchMetrics(t, ts.URL)
	d := after.Delta(before)

	total := int64(len(engines) * perEngine)
	// The /metrics fetches themselves hit the mux but not /match, so the
	// match handler's request counter must grow by exactly the workload.
	if got := d.Counters["server.match.requests"]; got != total {
		t.Errorf("server.match.requests delta = %d, want %d", got, total)
	}
	if got := d.Counters["server.match.errors"]; got != 0 {
		t.Errorf("server.match.errors delta = %d, want 0", got)
	}
	var engineSum int64
	for _, engine := range engines {
		name := "core.match." + engine + ".total"
		got := d.Counters[name]
		if got != perEngine {
			t.Errorf("%s delta = %d, want %d", name, got, perEngine)
		}
		engineSum += got
		lat := d.Histograms["core.match."+engine+".latency_us"]
		if lat.Count != perEngine {
			t.Errorf("core.match.%s.latency_us count delta = %d, want %d", engine, lat.Count, perEngine)
		}
	}
	if engineSum != total {
		t.Errorf("sum of per-engine match totals = %d, want %d (handler requests)", engineSum, total)
	}
	hist := d.Histograms["server.match.latency_us"]
	if hist.Count != total {
		t.Errorf("server.match.latency_us count delta = %d, want %d", hist.Count, total)
	}
}

// TestMetricsEndpointFormats checks the /metrics content negotiation and
// that /debug/vars carries the p3p expvar.
func TestMetricsEndpointFormats(t *testing.T) {
	ts, c := testServer(t)
	installVolga(t, c)
	c.Preference = appel.JanePreferenceXML
	if _, err := c.CanVisit("/books/1"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "server.match.requests ") {
		t.Errorf("text /metrics missing server.match.requests:\n%.400s", body)
	}

	resp, err = http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	var vars struct {
		P3P obs.Snapshot `json:"p3p"`
	}
	err = json.NewDecoder(resp.Body).Decode(&vars)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/vars JSON: %v", err)
	}
	if vars.P3P.Counters["server.match.requests"] < 1 {
		t.Errorf("/debug/vars p3p.counters missing match requests: %+v", vars.P3P.Counters)
	}
}

// TestTraceLogEmitsRequestLines installs a trace writer and checks one
// JSON line per /match request, with the engine annotation the core
// layer attaches riding on the request root span.
func TestTraceLogEmitsRequestLines(t *testing.T) {
	var mu struct {
		buf strings.Builder
	}
	obs.SetTraceWriter(writerFunc(func(p []byte) (int, error) {
		return mu.buf.Write(p)
	}))
	defer obs.SetTraceWriter(nil)

	ts, c := testServer(t)
	installVolga(t, c)
	c.Preference = appel.JanePreferenceXML
	c.Engine = "sql"
	if _, err := c.CanVisit("/books/42"); err != nil {
		t.Fatal(err)
	}
	_ = ts

	lines := strings.Split(strings.TrimSpace(mu.buf.String()), "\n")
	var matchLines []obs.TraceLine
	for _, l := range lines {
		var tl obs.TraceLine
		if err := json.Unmarshal([]byte(l), &tl); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, l)
		}
		if tl.Span == "server.match" {
			matchLines = append(matchLines, tl)
		}
	}
	if len(matchLines) != 1 {
		t.Fatalf("want 1 server.match trace line, got %d (%d total lines)", len(matchLines), len(lines))
	}
	tl := matchLines[0]
	if tl.Outcome != "ok" || tl.Attrs["status"] != "200" {
		t.Errorf("trace outcome/status = %q/%q, want ok/200", tl.Outcome, tl.Attrs["status"])
	}
	if tl.Attrs["engine"] != "sql" || tl.Attrs["policy"] != "volga" {
		t.Errorf("trace attrs missing engine/policy: %v", tl.Attrs)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
