package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
	"p3pdb/internal/registry"
)

// multiFixture builds a sites dir with one tenant (a.example, serving
// the volga paper policy) and a MultiServer over it.
func multiFixture(t *testing.T) (*httptest.Server, *registry.Registry, string) {
	t.Helper()
	root := t.TempDir()
	writeTenantDir(t, root, "a.example")
	reg, err := registry.New(registry.Options{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewMulti(reg))
	t.Cleanup(ts.Close)
	return ts, reg, root
}

func writeTenantDir(t *testing.T, root, name string) {
	t.Helper()
	dir := filepath.Join(root, name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "policies.xml"), []byte(p3p.VolgaPolicyXML), 0o644); err != nil {
		t.Fatal(err)
	}
	ref := `<META xmlns="http://www.w3.org/2002/01/P3Pv1">
	  <POLICY-REFERENCES>
	    <POLICY-REF about="/P3P/Policies.xml#volga"><INCLUDE>/*</INCLUDE></POLICY-REF>
	  </POLICY-REFERENCES></META>`
	if err := os.WriteFile(filepath.Join(dir, "reference.xml"), []byte(ref), 0o644); err != nil {
		t.Fatal(err)
	}
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPathRouting(t *testing.T) {
	ts, _, _ := multiFixture(t)

	// The tenant's full single-site API is reachable under its prefix.
	resp, err := http.Get(ts.URL + "/sites/a.example/policies")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	decodeBody(t, resp, &names)
	if len(names) != 1 || names[0] != "volga" {
		t.Fatalf("policies via prefix = %v", names)
	}

	resp, err = http.Post(ts.URL+"/sites/a.example/match?uri=/books/1&engine=sql",
		"application/xml", strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("match via prefix: %d %s", resp.StatusCode, body)
	}
	var d MatchResponse
	decodeBody(t, resp, &d)
	if d.Behavior != "request" || d.PolicyName != "volga" {
		t.Errorf("decision = %+v", d)
	}
}

func TestMultiHostRouting(t *testing.T) {
	ts, _, _ := multiFixture(t)

	req, err := http.NewRequest(http.MethodPost,
		ts.URL+"/match?uri=/books/1&engine=sql", strings.NewReader(appel.JanePreferenceXML))
	if err != nil {
		t.Fatal(err)
	}
	// Routing keys off the Host header, case-folded and port-stripped.
	req.Host = "A.EXAMPLE:8443"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("host-routed match: %d %s", resp.StatusCode, body)
	}
	var d MatchResponse
	decodeBody(t, resp, &d)
	if d.PolicyName != "volga" {
		t.Errorf("decision = %+v", d)
	}
}

func TestMultiUnknownTenantJSON404(t *testing.T) {
	ts, _, _ := multiFixture(t)

	for _, url := range []string{
		ts.URL + "/sites/ghost.example/policies",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", url, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content-type %q, want JSON", url, ct)
		}
		var e apiError
		decodeBody(t, resp, &e)
		if e.Reason != "unknown-tenant" || e.Error == "" {
			t.Errorf("%s: body %+v", url, e)
		}
	}

	// Host-routed requests for unknown tenants get the same envelope.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/policies", nil)
	req.Host = "ghost.example"
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("host-routed unknown tenant: %d", resp.StatusCode)
	}
	var e apiError
	decodeBody(t, resp, &e)
	if e.Reason != "unknown-tenant" {
		t.Errorf("host-routed body %+v", e)
	}

	// A malformed tenant name is a client error, not unknown.
	resp, err = http.Get(ts.URL + "/sites/bad..name/policies")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid name: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMultiAdminAPI(t *testing.T) {
	ts, _, _ := multiFixture(t)

	// List includes the on-disk tenant before it is ever loaded.
	resp, err := http.Get(ts.URL + "/sites")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	decodeBody(t, resp, &names)
	if len(names) != 1 || names[0] != "a.example" {
		t.Fatalf("sites = %v", names)
	}

	// Create a dynamic tenant and install a policy through its API.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/sites/dyn.example", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/sites/dyn.example/policies", "application/xml",
		strings.NewReader(p3p.VolgaPolicyXML))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("install into dynamic tenant: %d", resp.StatusCode)
	}

	// Duplicate create conflicts.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/sites/dyn.example", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("duplicate create: %d", resp.StatusCode)
	}

	// Delete it; its prefix then 404s (no backing dir to reload from).
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/sites/dyn.example", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/sites/dyn.example/policies")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted tenant: %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestMultiReloadEndpoint(t *testing.T) {
	ts, _, root := multiFixture(t)

	// Load the tenant, then change its directory on disk.
	resp, err := http.Get(ts.URL + "/sites/a.example/policies")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	pol := strings.Replace(p3p.VolgaPolicyXML, `name="volga"`, `name="renamed"`, 1)
	if err := os.WriteFile(filepath.Join(root, "a.example", "policies.xml"), []byte(pol), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(root, "a.example", "reference.xml")); err != nil {
		t.Fatal(err)
	}

	resp, err = http.Post(ts.URL+"/sites/a.example", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("reload: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/sites/a.example/policies")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	decodeBody(t, resp, &names)
	if len(names) != 1 || names[0] != "renamed" {
		t.Errorf("policies after reload = %v", names)
	}
}

func TestMultiHealthAndReady(t *testing.T) {
	ts, _, _ := multiFixture(t)

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content-type %q", path, ct)
		}
		var body map[string]string
		decodeBody(t, resp, &body)
		if body["status"] == "" {
			t.Errorf("%s: body %v", path, body)
		}
	}
}

func TestSingleSiteHealthAndReadyJSON(t *testing.T) {
	ts, _ := testServer(t)
	for path, want := range map[string]string{"/healthz": "ok", "/readyz": "ready"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %d", path, resp.StatusCode)
		}
		var body map[string]string
		decodeBody(t, resp, &body)
		if body["status"] != want {
			t.Errorf("%s: status %q, want %q", path, body["status"], want)
		}
	}
}

func TestMultiTenantIsolation(t *testing.T) {
	ts, _, root := multiFixture(t)
	writeTenantDir(t, root, "b.example")

	// Remove a policy through tenant b's API; tenant a is untouched.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sites/b.example/policies/volga", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete b's policy: %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/sites/a.example/policies")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	decodeBody(t, resp, &names)
	if len(names) != 1 || names[0] != "volga" {
		t.Errorf("tenant a after mutating b = %v", names)
	}
	resp, err = http.Get(ts.URL + "/sites/b.example/policies")
	if err != nil {
		t.Fatal(err)
	}
	names = nil
	decodeBody(t, resp, &names)
	if len(names) != 0 {
		t.Errorf("tenant b = %v, want empty", names)
	}
}
