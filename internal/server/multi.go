package server

import (
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"p3pdb/internal/core"
	"p3pdb/internal/obs"
	"p3pdb/internal/registry"
)

// MultiServer fronts a registry of tenant sites with one HTTP listener:
// the hosting-provider form of the server-centric architecture, where a
// single matching service answers for many sites. Requests reach a
// tenant two ways:
//
//   - Path routing: /sites/{name}/... strips the prefix and delegates
//     the rest to the tenant's single-site API (/sites/a.example/match,
//     /sites/a.example/policies, ...).
//   - Host routing: any other path resolves the Host header (port
//     stripped, case-folded) to a tenant, so pointing a site's DNS at
//     the service just works.
//
// /sites itself is the tenant admin API, and /healthz, /readyz, and
// /metrics answer for the process rather than any one tenant.
type MultiServer struct {
	reg  *registry.Registry
	opts Options
	mux  *http.ServeMux

	// handlers caches one single-site Server per tenant. An entry is
	// keyed to the *core.Site it wrapped: when the registry hands back a
	// different instance (the tenant was evicted and reloaded), the
	// cached handler is rebuilt, so a stale Server can never serve a
	// dropped tenant's policies.
	handlers sync.Map // name -> *tenantHandler
}

type tenantHandler struct {
	site *core.Site
	srv  *Server
}

// NewMulti wraps a registry with default options.
func NewMulti(reg *registry.Registry) *MultiServer {
	return NewMultiWithOptions(reg, Options{})
}

// NewMultiWithOptions wraps a registry.
func NewMultiWithOptions(reg *registry.Registry, opts Options) *MultiServer {
	m := &MultiServer{reg: reg, opts: opts, mux: http.NewServeMux()}
	m.mux.HandleFunc("/sites", instrument("sites", m.handleSites))
	m.mux.HandleFunc("/sites/", instrument("site", m.handleSite))
	m.mux.HandleFunc("/replication/status", instrument("replication", m.handleReplication))
	m.mux.Handle("/metrics", obs.Handler(obs.Default))
	m.mux.HandleFunc("/healthz", handleHealthz)
	m.mux.HandleFunc("/readyz", m.handleReadyz)
	m.mux.HandleFunc("/", m.handleByHost)
	return m
}

// ServeHTTP implements http.Handler.
func (m *MultiServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}

// handleHealthz reports liveness; shared with the single-site server.
func handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness: the process should only receive
// traffic once the registry finished loading.
func (m *MultiServer) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !m.reg.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not-ready"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// writeTenantError reports a tenant-resolution failure: unknown tenants
// are a JSON 404 with a machine-readable reason, bad names a 400.
func writeTenantError(w http.ResponseWriter, err error) {
	if errors.Is(err, registry.ErrUnknownSite) {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error(), Reason: "unknown-tenant"})
		return
	}
	writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error(), Reason: "invalid-tenant"})
}

// tenant resolves a name through the registry and returns the tenant's
// cached single-site handler, rebuilding it if the site instance changed
// (eviction + reload also rotates the journal, so a rebuilt handler
// always logs to the live journal, never an evicted tenant's closed one).
func (m *MultiServer) tenant(name string) (*Server, error) {
	site, journal, err := m.reg.GetWithJournal(name)
	if err != nil {
		return nil, err
	}
	if v, ok := m.handlers.Load(name); ok {
		if h := v.(*tenantHandler); h.site == site {
			return h.srv, nil
		}
	}
	opts := m.opts
	opts.Journal = journal
	h := &tenantHandler{site: site, srv: NewWithOptions(site, opts)}
	m.handlers.Store(name, h)
	return h.srv, nil
}

// handleSites implements the admin listing: GET /sites returns every
// known tenant (resident and on disk).
func (m *MultiServer) handleSites(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	writeJSON(w, http.StatusOK, m.reg.Names())
}

// handleSite dispatches /sites/{name} and /sites/{name}/...:
//
//   - PUT /sites/{name}: create an empty dynamic tenant (populate it
//     through its /policies endpoint).
//   - DELETE /sites/{name}: drop the tenant from the registry.
//   - POST /sites/{name}: re-read the tenant's directory and swap its
//     policy set atomically (the per-tenant face of SIGHUP).
//   - /sites/{name}/...: strip the prefix and delegate to the tenant's
//     single-site API.
func (m *MultiServer) handleSite(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sites/")
	name, sub, nested := strings.Cut(rest, "/")
	if name == "" {
		writeError(w, http.StatusNotFound, fmt.Errorf("missing site name"))
		return
	}
	if !nested {
		m.handleSiteAdmin(w, r, name)
		return
	}
	srv, err := m.tenant(name)
	if err != nil {
		writeTenantError(w, err)
		return
	}
	r2 := r.Clone(r.Context())
	r2.URL.Path = "/" + sub
	if r.URL.RawPath != "" {
		r2.URL.RawPath = ""
	}
	srv.ServeHTTP(w, r2)
}

func (m *MultiServer) handleSiteAdmin(w http.ResponseWriter, r *http.Request, name string) {
	switch r.Method {
	case http.MethodPut:
		if _, err := m.reg.Create(name); err != nil {
			if errors.Is(err, registry.ErrReadOnly) {
				writeReadOnly(w, m.opts.Leader)
				return
			}
			if errors.Is(err, registry.ErrUnknownSite) {
				writeTenantError(w, err)
				return
			}
			writeError(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"site": name})
	case http.MethodDelete:
		if err := m.reg.Remove(name); err != nil {
			if errors.Is(err, registry.ErrReadOnly) {
				writeReadOnly(w, m.opts.Leader)
				return
			}
			writeTenantError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodPost:
		if err := m.reg.Reload(name); err != nil {
			if errors.Is(err, registry.ErrReadOnly) {
				writeReadOnly(w, m.opts.Leader)
				return
			}
			if errors.Is(err, registry.ErrUnknownSite) {
				writeTenantError(w, err)
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

// handleByHost routes every non-admin path by the request's Host header.
func (m *MultiServer) handleByHost(w http.ResponseWriter, r *http.Request) {
	srv, err := m.tenant(r.Host)
	if err != nil {
		writeTenantError(w, err)
		return
	}
	srv.ServeHTTP(w, r)
}

// HTTPServer wraps the handler in an http.Server with the same timeout
// posture as the single-site server.
func (m *MultiServer) HTTPServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           m,
		ReadHeaderTimeout: defaultReadHeaderTimeout,
		IdleTimeout:       2 * time.Minute,
	}
}
