package server

import (
	"fmt"
	"net/http"
	"strings"

	"p3pdb/internal/core"
)

// PrefsStatus is the GET /prefs response: the registered preference
// rulesets plus the warm-status of the decision cache — how the last
// publish pre-warmed it and where lookups land now.
type PrefsStatus struct {
	Preferences []core.RegisteredPreference `json:"preferences"`
	Prewarm     core.PrewarmStats           `json:"prewarm"`
	LastPublish core.PrewarmStats           `json:"lastPublish"`
	Decisions   core.DecisionCacheDetail    `json:"decisions"`
}

// PrefRegisterResponse reports a successful registration.
type PrefRegisterResponse struct {
	Name    string   `json:"name"`
	Engines []string `json:"engines"`
	Rules   int      `json:"rules"`
}

// handlePrefs implements POST /prefs?name=mine&engines=sql,native with
// the APPEL ruleset as the body (register a preference for pre-warming;
// durable when a journal is configured, rejected on read-only replicas)
// and GET /prefs (list registrations plus warm-status). In multi-tenant
// mode it is reached as /sites/{name}/prefs.
func (s *Server) handlePrefs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost, http.MethodPut:
		if s.rejectReadOnly(w) {
			return
		}
		name := r.URL.Query().Get("name")
		if name == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing name parameter"))
			return
		}
		var engines []string
		for _, e := range strings.Split(r.URL.Query().Get("engines"), ",") {
			if e = strings.TrimSpace(e); e != "" {
				engines = append(engines, e)
			}
		}
		body, ok := readBody(w, r)
		if !ok {
			return
		}
		var err error
		if s.opts.Journal != nil {
			err = s.opts.Journal.RegisterPreferenceXML(s.site, name, body, engines)
		} else {
			err = s.site.RegisterPreferenceXML(name, body, engines)
		}
		if err != nil {
			writeMutationError(w, err)
			return
		}
		s.afterMutation()
		for _, reg := range s.site.RegisteredPreferences() {
			if reg.Name == name {
				writeJSON(w, http.StatusCreated, PrefRegisterResponse{Name: reg.Name, Engines: reg.Engines, Rules: reg.Rules})
				return
			}
		}
		writeJSON(w, http.StatusCreated, PrefRegisterResponse{Name: name, Engines: engines})
	case http.MethodGet:
		cum, last := s.site.PrewarmStats()
		prefs := s.site.RegisteredPreferences()
		if prefs == nil {
			prefs = []core.RegisteredPreference{}
		}
		writeJSON(w, http.StatusOK, PrefsStatus{
			Preferences: prefs,
			Prewarm:     cum,
			LastPublish: last,
			Decisions:   s.site.DecisionCacheDetail(),
		})
	default:
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}
