package server

import (
	"fmt"
	"io"
	"net/http"
	"net/url"

	"p3pdb/internal/reffile"
)

// HybridClient implements the hybrid architecture the paper sketches at
// the end of Section 4.2: "it is possible to design a hybrid architecture
// in which the reference file processing is done at the client while the
// preference checking is done at the server." The client downloads and
// caches the site's reference file once, resolves each URI locally, and
// asks the server to match against the named policy — saving a round of
// server-side reference-file queries per request, and letting the client
// skip requests entirely when consecutive pages share a policy whose
// decision it has already seen.
type HybridClient struct {
	inner *Client
	ref   *reffile.RefFile
	// decisions caches the decision per policy name for this preference.
	decisions map[string]MatchResponse
	// Preference is the user's APPEL preference document.
	Preference string
	// Engine selects the server-side matching implementation.
	Engine string
	// ServerCalls counts round trips that reached the match endpoint,
	// so callers can observe the hybrid savings.
	ServerCalls int
}

// NewHybridClient fetches and caches the reference file from the server.
func NewHybridClient(base string) (*HybridClient, error) {
	c := NewClient(base)
	resp, err := c.do(http.MethodGet, "/reference", "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	ref, err := reffile.Parse(string(body))
	if err != nil {
		return nil, fmt.Errorf("server: bad reference file: %w", err)
	}
	return &HybridClient{
		inner:     c,
		ref:       ref,
		decisions: map[string]MatchResponse{},
		Engine:    "sql",
	}, nil
}

// CanVisit resolves the URI against the cached reference file and returns
// the matching decision, reusing cached per-policy decisions where the
// preference has already been checked against that policy.
func (h *HybridClient) CanVisit(uri string) (MatchResponse, error) {
	pr := h.ref.PolicyForURI(uri)
	if pr == nil {
		return MatchResponse{}, fmt.Errorf("server: no policy covers %q", uri)
	}
	name := pr.PolicyName()
	if d, ok := h.decisions[name]; ok {
		return d, nil
	}
	d, err := h.matchPolicy(name)
	if err != nil {
		return MatchResponse{}, err
	}
	h.decisions[name] = d
	return d, nil
}

// InvalidateCache drops cached decisions (e.g. after changing the
// preference).
func (h *HybridClient) InvalidateCache() {
	h.decisions = map[string]MatchResponse{}
}

func (h *HybridClient) matchPolicy(name string) (MatchResponse, error) {
	h.ServerCalls++
	q := url.Values{"policy": {name}, "engine": {h.Engine}}
	resp, err := h.inner.do(http.MethodPost, "/matchpolicy?"+q.Encode(), h.Preference)
	if err != nil {
		return MatchResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MatchResponse{}, decodeError(resp)
	}
	defer resp.Body.Close()
	var out MatchResponse
	if err := decodeJSON(resp.Body, &out); err != nil {
		return MatchResponse{}, err
	}
	return out, nil
}
