package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is the thin-client side of the server-centric architecture: it
// holds the user's APPEL preference and asks the server for decisions; no
// APPEL engine, policy parser, or base data schema runs on the client.
type Client struct {
	base string
	http *http.Client
	// Preference is the user's APPEL preference document.
	Preference string
	// Engine selects the server-side matching implementation.
	Engine string
}

// NewClient targets a server base URL (e.g. "http://localhost:8733").
func NewClient(base string) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		http:   &http.Client{Timeout: 30 * time.Second},
		Engine: "sql",
	}
}

func (c *Client) do(method, path, body string) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	return c.http.Do(req)
}

// decodeJSON decodes a JSON response body.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return fmt.Errorf("server returned %s: %s", resp.Status, e.Error)
}

// InstallPolicies uploads a POLICY or POLICIES document and returns the
// installed policy names. (A site-owner operation.)
func (c *Client) InstallPolicies(policyXML string) ([]string, error) {
	resp, err := c.do(http.MethodPost, "/policies", policyXML)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out InstallResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Installed, nil
}

// InstallReferenceFile uploads the site's META document.
func (c *Client) InstallReferenceFile(metaXML string) error {
	resp, err := c.do(http.MethodPost, "/reference", metaXML)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// CanVisit asks the server whether the user's preference permits visiting
// a URI, returning the full decision.
func (c *Client) CanVisit(uri string) (MatchResponse, error) {
	q := url.Values{"uri": {uri}, "engine": {c.Engine}}
	resp, err := c.do(http.MethodPost, "/match?"+q.Encode(), c.Preference)
	if err != nil {
		return MatchResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MatchResponse{}, decodeError(resp)
	}
	defer resp.Body.Close()
	var out MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return MatchResponse{}, err
	}
	return out, nil
}

// CheckRequest names one protocol-loop check: a URL and/or a cookie,
// and either a server-side preference level or the user's own APPEL
// document.
type CheckRequest struct {
	URL    string
	Cookie string
	// Level names a server-side preference (an agent attitude —
	// apathetic, mild, paranoid — or a JRC profile). Ignored when
	// Preference is set.
	Level string
	// Preference, when non-empty, is POSTed as the APPEL body.
	Preference string
	// Engine overrides the client's fallback engine for this check.
	Engine string
}

// Check runs the protocol loop (reference-file lookup, compact fast
// path, full-match fallback) for a page visit and/or cookie. The second
// return is the P3P response header carrying the applicable policy's
// compact form.
func (c *Client) Check(req CheckRequest) (CheckResponse, string, error) {
	q := url.Values{}
	if req.URL != "" {
		q.Set("url", req.URL)
	}
	if req.Cookie != "" {
		q.Set("cookie", req.Cookie)
	}
	engine := req.Engine
	if engine == "" {
		engine = c.Engine
	}
	q.Set("engine", engine)
	method, body := http.MethodGet, ""
	if req.Preference != "" {
		method, body = http.MethodPost, req.Preference
	} else if req.Level != "" {
		q.Set("level", req.Level)
	}
	resp, err := c.do(method, "/check?"+q.Encode(), body)
	if err != nil {
		return CheckResponse{}, "", err
	}
	if resp.StatusCode != http.StatusOK {
		return CheckResponse{}, "", decodeError(resp)
	}
	defer resp.Body.Close()
	cp := resp.Header.Get("P3P")
	var out CheckResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return CheckResponse{}, "", err
	}
	return out, cp, nil
}

// CreateSite provisions an empty dynamic tenant through the
// multi-tenant admin API (PUT /sites/{name}); an existing tenant of the
// same name is not an error.
func (c *Client) CreateSite(name string) error {
	resp, err := c.do(http.MethodPut, "/sites/"+url.PathEscape(name), "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusConflict {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// FetchPolicy downloads a policy document (the client-centric fetch used
// by the hybrid architecture).
func (c *Client) FetchPolicy(name string) (string, error) {
	resp, err := c.do(http.MethodGet, "/policies/"+url.PathEscape(name), "")
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Policies lists installed policy names.
func (c *Client) Policies() ([]string, error) {
	resp, err := c.do(http.MethodGet, "/policies", "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out []string
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// AnalyticsRow is one conflict-analytics entry.
type AnalyticsRow struct {
	Policy string `json:"policy"`
	Rule   string `json:"rule"`
	Blocks int    `json:"blocks"`
}

// Analytics fetches the site-owner conflict statistics.
func (c *Client) Analytics() ([]AnalyticsRow, error) {
	resp, err := c.do(http.MethodGet, "/analytics", "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out []AnalyticsRow
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
