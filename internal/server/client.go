package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is the thin-client side of the server-centric architecture: it
// holds the user's APPEL preference and asks the server for decisions; no
// APPEL engine, policy parser, or base data schema runs on the client.
type Client struct {
	base string
	http *http.Client
	// Preference is the user's APPEL preference document.
	Preference string
	// Engine selects the server-side matching implementation.
	Engine string
}

// NewClient targets a server base URL (e.g. "http://localhost:8733").
func NewClient(base string) *Client {
	return &Client{
		base:   strings.TrimRight(base, "/"),
		http:   &http.Client{Timeout: 30 * time.Second},
		Engine: "sql",
	}
}

func (c *Client) do(method, path, body string) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	return c.http.Do(req)
}

// decodeJSON decodes a JSON response body.
func decodeJSON(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}

func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return fmt.Errorf("server returned %s: %s", resp.Status, e.Error)
}

// InstallPolicies uploads a POLICY or POLICIES document and returns the
// installed policy names. (A site-owner operation.)
func (c *Client) InstallPolicies(policyXML string) ([]string, error) {
	resp, err := c.do(http.MethodPost, "/policies", policyXML)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out InstallResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out.Installed, nil
}

// InstallReferenceFile uploads the site's META document.
func (c *Client) InstallReferenceFile(metaXML string) error {
	resp, err := c.do(http.MethodPost, "/reference", metaXML)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// CanVisit asks the server whether the user's preference permits visiting
// a URI, returning the full decision.
func (c *Client) CanVisit(uri string) (MatchResponse, error) {
	q := url.Values{"uri": {uri}, "engine": {c.Engine}}
	resp, err := c.do(http.MethodPost, "/match?"+q.Encode(), c.Preference)
	if err != nil {
		return MatchResponse{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return MatchResponse{}, decodeError(resp)
	}
	defer resp.Body.Close()
	var out MatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return MatchResponse{}, err
	}
	return out, nil
}

// FetchPolicy downloads a policy document (the client-centric fetch used
// by the hybrid architecture).
func (c *Client) FetchPolicy(name string) (string, error) {
	resp, err := c.do(http.MethodGet, "/policies/"+url.PathEscape(name), "")
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// Policies lists installed policy names.
func (c *Client) Policies() ([]string, error) {
	resp, err := c.do(http.MethodGet, "/policies", "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out []string
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// AnalyticsRow is one conflict-analytics entry.
type AnalyticsRow struct {
	Policy string `json:"policy"`
	Rule   string `json:"rule"`
	Blocks int    `json:"blocks"`
}

// Analytics fetches the site-owner conflict statistics.
func (c *Client) Analytics() ([]AnalyticsRow, error) {
	resp, err := c.do(http.MethodGet, "/analytics", "")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var out []AnalyticsRow
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}
