package xtable

import (
	"errors"
	"strings"
	"testing"

	"p3pdb/internal/appel"
	"p3pdb/internal/p3p"
	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
	"p3pdb/internal/sqlgen"
	"p3pdb/internal/xqgen"
)

func genFixture(t testing.TB, policyXML string) (*reldb.DB, int) {
	t.Helper()
	db := reldb.New()
	st, err := shred.NewGeneric(db)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p3p.ParsePolicy(policyXML)
	if err != nil {
		t.Fatal(err)
	}
	id, err := st.InstallPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	return db, id
}

func mustRuleset(t testing.TB, src string) *appel.Ruleset {
	t.Helper()
	rs, err := appel.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

// translateViaXQuery runs the full variation-2 pipeline: APPEL -> XQuery
// text -> parse -> SQL over the generic schema.
func translateViaXQuery(t testing.TB, rs *appel.Ruleset, policyID int, opts Options) []sqlgen.RuleQuery {
	t.Helper()
	xqs, err := xqgen.TranslateRuleset(rs)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]sqlgen.RuleQuery, 0, len(xqs))
	for _, xq := range xqs {
		q, err := TranslateXQuery(xq.XQuery, sqlgen.FixedPolicySubquery(policyID), opts)
		if err != nil {
			t.Fatalf("xtable translate: %v\n%s", err, xq.XQuery)
		}
		out = append(out, q)
	}
	return out
}

func TestJaneAgainstVolga(t *testing.T) {
	db, id := genFixture(t, p3p.VolgaPolicyXML)
	rs := mustRuleset(t, appel.JanePreferenceXML)
	qs := translateViaXQuery(t, rs, id, Options{})
	res, err := sqlgen.Match(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Behavior != "request" || res.RuleIndex != 2 {
		t.Errorf("result = %+v, want request via rule 3", res)
	}
}

func TestCounterfactual(t *testing.T) {
	modified := strings.Replace(p3p.VolgaPolicyXML,
		`<individual-decision required="opt-in"/>`, `<individual-decision/>`, 1)
	db, id := genFixture(t, modified)
	rs := mustRuleset(t, appel.JanePreferenceXML)
	qs := translateViaXQuery(t, rs, id, Options{})
	res, err := sqlgen.Match(db, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Behavior != "block" || res.RuleIndex != 0 {
		t.Errorf("result = %+v", res)
	}
}

const tinyPolicy = `<POLICY xmlns="http://www.w3.org/2002/01/P3Pv1" name="t">
  <STATEMENT>
    <PURPOSE><current/><admin required="opt-in"/></PURPOSE>
    <RECIPIENT><ours/></RECIPIENT>
    <RETENTION><stated-purpose/></RETENTION>
    <DATA-GROUP>
      <DATA ref="#user.home-info.online.email"/>
      <DATA ref="#dynamic.miscdata"><CATEGORIES><purchase/><financial/></CATEGORIES></DATA>
    </DATA-GROUP>
  </STATEMENT>
</POLICY>`

// TestAgreesWithDirectSQL cross-checks variation 2 (APPEL -> XQuery -> SQL
// via the view) against variation 1's generic translation for a set of
// rule bodies.
func TestAgreesWithDirectSQL(t *testing.T) {
	rules := []string{
		`<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin/><telemarketing/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="or"><admin required="always"/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="and"><current/><admin required="opt-in"/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="non-or"><telemarketing/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="and-exact"><current/><admin required="opt-in"/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><PURPOSE appel:connective="or-exact"><current/></PURPOSE></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><RETENTION appel:connective="non-or"><indefinitely/></RETENTION></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="#user.home-info"/></DATA-GROUP></STATEMENT></POLICY>`,
		`<POLICY><STATEMENT><DATA-GROUP><DATA ref="*"><CATEGORIES><purchase/><financial/></CATEGORIES></DATA></DATA-GROUP></STATEMENT></POLICY>`,
	}
	db, id := genFixture(t, tinyPolicy)
	for _, rule := range rules {
		rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
			<appel:RULE behavior="block">` + rule + `</appel:RULE>
			<appel:OTHERWISE behavior="request"/>
		</appel:RULESET>`
		rs := mustRuleset(t, rsDoc)
		direct, err := sqlgen.TranslateRulesetGeneric(rs, sqlgen.FixedPolicySubquery(id), sqlgen.GenericOptions{})
		if err != nil {
			t.Fatalf("direct translate: %v", err)
		}
		directRes, err := sqlgen.Match(db, direct)
		if err != nil {
			t.Fatalf("direct match: %v", err)
		}
		viaView := translateViaXQuery(t, rs, id, Options{})
		viewRes, err := sqlgen.Match(db, viaView)
		if err != nil {
			t.Fatalf("view match: %v\n%s", err, viaView[0].SQL)
		}
		if directRes.Behavior != viewRes.Behavior {
			t.Errorf("disagreement on %s:\ndirect=%s view=%s", rule, directRes.Behavior, viewRes.Behavior)
		}
	}
}

func TestViewReconstructionShape(t *testing.T) {
	rs := mustRuleset(t, appel.JaneSimplifiedRuleXML)
	xqs, err := xqgen.TranslateRuleset(rs)
	if err != nil {
		t.Fatal(err)
	}
	wrapped, err := TranslateXQuery(xqs[0].XQuery, sqlgen.FixedPolicySubquery(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wrapped.SQL, "(SELECT * FROM purpose) AS") {
		t.Errorf("view reconstruction missing:\n%s", wrapped.SQL)
	}
	plain, err := TranslateXQuery(xqs[0].XQuery, sqlgen.FixedPolicySubquery(1), Options{DisableViewReconstruction: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.SQL, "(SELECT * FROM purpose) AS") {
		t.Errorf("ablation should remove the view wrapper:\n%s", plain.SQL)
	}
}

// TestComplexPreferenceTooComplex reproduces the Figure 21 blank cell: an
// exact-heavy rule, translated through the XML view, exceeds the
// relational engine's statement-complexity limit, while the same rule on
// the optimized schema executes fine.
func TestComplexPreferenceTooComplex(t *testing.T) {
	rule := `<POLICY><STATEMENT>
	  <PURPOSE appel:connective="or-exact">
	    <current/><admin/><develop/><tailoring/><pseudo-analysis/>
	    <pseudo-decision/><individual-analysis required="opt-in"/>
	    <individual-decision required="opt-in"/>
	  </PURPOSE>
	  <RECIPIENT appel:connective="and-exact"><ours/></RECIPIENT>
	  <DATA-GROUP><DATA ref="*">
	    <CATEGORIES appel:connective="non-or">
	      <health/><financial/><political/><government/><location/>
	    </CATEGORIES>
	  </DATA></DATA-GROUP>
	</STATEMENT></POLICY>`
	rsDoc := `<appel:RULESET xmlns:appel="http://www.w3.org/2002/01/APPELv1">
		<appel:RULE behavior="block">` + rule + `</appel:RULE>
		<appel:OTHERWISE behavior="request"/>
	</appel:RULESET>`
	rs := mustRuleset(t, rsDoc)

	db, id := genFixture(t, tinyPolicy)
	qs := translateViaXQuery(t, rs, id, Options{})
	_, err := sqlgen.Match(db, qs)
	if err == nil {
		t.Fatal("exact-heavy view translation should exceed the complexity limit")
	}
	if !errors.Is(err, reldb.ErrTooComplex) {
		t.Fatalf("expected ErrTooComplex, got %v", err)
	}

	// The optimized translation of the same preference executes fine.
	odb := reldb.New()
	ost, err := shred.NewOptimized(odb)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := p3p.ParsePolicy(tinyPolicy)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := ost.InstallPolicy(pol)
	if err != nil {
		t.Fatal(err)
	}
	oqs, err := sqlgen.TranslateRulesetOptimized(rs, sqlgen.FixedPolicySubquery(oid))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sqlgen.Match(odb, oqs); err != nil {
		t.Fatalf("optimized path should execute: %v", err)
	}
}

func TestTranslateErrors(t *testing.T) {
	bad := []string{
		`if (document("applicable-policy")/NOSUCH) then <block/> else ()`,
		`if (document("applicable-policy")/POLICY[@bogus = "1"]) then <block/> else ()`,
	}
	for _, src := range bad {
		if _, err := TranslateXQuery(src, sqlgen.FixedPolicySubquery(1), Options{}); err == nil {
			t.Errorf("TranslateXQuery(%q): expected error", src)
		}
	}
}
