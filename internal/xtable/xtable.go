// Package xtable translates XQuery (the subset xqgen generates) into SQL
// over the generic relational schema, playing the role of the XTABLE /
// XPERANTO prototype in the paper's experiments: the system that accepts
// an XQuery over the XML view of the policy tables and produces SQL for
// the relational engine.
//
// Faithful to the paper's findings, the generated SQL is naive: it targets
// the unoptimized one-table-per-element schema and (by default) wraps
// every table access in the XML-view reconstruction derived table, which
// defeats index use and inflates the statement's query-block count. For
// sufficiently exact-heavy preferences the result exceeds the relational
// engine's statement-complexity limit — reproducing the blank Medium cell
// of Figure 21 ("the XTABLE translation of the XQuery into SQL was too
// complex for DB2 to execute").
package xtable

import (
	"fmt"
	"strings"

	"p3pdb/internal/reldb"
	"p3pdb/internal/shred"
	"p3pdb/internal/sqlgen"
	"p3pdb/internal/xquery"
)

// Options configure the translation.
type Options struct {
	// DisableViewReconstruction generates direct table access instead of
	// the XML-view wrapper; used by ablation benchmarks to separate the
	// cost of the view layer from the cost of the generic schema.
	DisableViewReconstruction bool
}

// TranslateQuery translates one generated XQuery into a SQL RuleQuery.
// applicable is the applicablePolicy() subquery embedded as the
// ApplicablePolicy derived table (the document("applicable-policy")
// binding).
func TranslateQuery(q *xquery.Query, applicable string, opts Options) (sqlgen.RuleQuery, error) {
	if q.Else != "" {
		return sqlgen.RuleQuery{}, fmt.Errorf("xtable: else branch with content is not supported")
	}
	tr := &translator{reg: shred.GenericRegistry(), opts: opts}
	cond, err := tr.boolean(q.Cond, docCtx())
	if err != nil {
		return sqlgen.RuleQuery{}, err
	}
	sql := "SELECT " + sqlString(q.Then) + " FROM (" + applicable + ") AS ApplicablePolicy"
	if cond != "1 = 1" {
		sql += " WHERE " + cond
	}
	return sqlgen.RuleQuery{Behavior: q.Then, SQL: sql}, nil
}

// TranslateXQuery parses and translates XQuery text.
func TranslateXQuery(src, applicable string, opts Options) (sqlgen.RuleQuery, error) {
	q, err := xquery.Parse(src)
	if err != nil {
		return sqlgen.RuleQuery{}, fmt.Errorf("xtable: %w", err)
	}
	return TranslateQuery(q, applicable, opts)
}

// nodeCtx is the translation context: which element (and SQL alias) the
// current XPath context node is bound to. The document node is the
// ApplicablePolicy derived table.
type nodeCtx struct {
	element string // "#document" or a P3P element name
	alias   string
	pkCols  []string
}

func docCtx() nodeCtx {
	return nodeCtx{element: "#document", alias: "ApplicablePolicy", pkCols: []string{"policy_id"}}
}

type translator struct {
	reg  map[string]shred.GenericTable
	opts Options
	n    int
}

func (t *translator) alias() string {
	t.n++
	return fmt.Sprintf("x%d", t.n)
}

func (t *translator) fromClause(table, alias string) string {
	if t.opts.DisableViewReconstruction {
		return table + " " + alias
	}
	// The XML-view reconstruction layer: element access goes through the
	// view that re-derives the element's rows.
	return "(SELECT * FROM " + table + ") AS " + alias
}

func sqlString(s string) string {
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

// boolean translates an expression in boolean position.
func (t *translator) boolean(e xquery.Expr, ctx nodeCtx) (string, error) {
	switch x := e.(type) {
	case *xquery.BinaryExpr:
		switch x.Op {
		case "and", "or":
			l, err := t.boolean(x.Left, ctx)
			if err != nil {
				return "", err
			}
			r, err := t.boolean(x.Right, ctx)
			if err != nil {
				return "", err
			}
			return "(" + l + " " + strings.ToUpper(x.Op) + " " + r + ")", nil
		case "=", "!=":
			l, err := t.scalar(x.Left, ctx)
			if err != nil {
				return "", err
			}
			r, err := t.scalar(x.Right, ctx)
			if err != nil {
				return "", err
			}
			op := x.Op
			if op == "!=" {
				op = "<>"
			}
			return "(" + l + " " + op + " " + r + ")", nil
		}
		return "", fmt.Errorf("xtable: unknown operator %s", x.Op)

	case *xquery.NotExpr:
		inner, err := t.boolean(x.Operand, ctx)
		if err != nil {
			return "", err
		}
		return "NOT (" + inner + ")", nil

	case *xquery.FuncExpr:
		if x.Name == "starts-with" {
			return t.startsWith(x, ctx)
		}
		return "", fmt.Errorf("xtable: function %s has no boolean form", x.Name)

	case *xquery.Literal:
		if x.Value != "" {
			return "1 = 1", nil
		}
		return "1 = 0", nil

	case *xquery.PathExpr:
		return t.pathExists(x, ctx)
	}
	return "", fmt.Errorf("xtable: cannot translate %T", e)
}

// startsWith translates starts-with(X, Y) into X LIKE Y || '%'.
func (t *translator) startsWith(x *xquery.FuncExpr, ctx nodeCtx) (string, error) {
	if len(x.Args) != 2 {
		return "", fmt.Errorf("xtable: starts-with expects 2 arguments")
	}
	subject, err := t.scalar(x.Args[0], ctx)
	if err != nil {
		return "", err
	}
	if lit, ok := x.Args[1].(*xquery.Literal); ok {
		return "(" + subject + " LIKE " + sqlString(reldb.EscapeLike(lit.Value)+"%") + ")", nil
	}
	prefix, err := t.scalar(x.Args[1], ctx)
	if err != nil {
		return "", err
	}
	return "(" + subject + " LIKE " + prefix + " || '%')", nil
}

// scalar translates an expression in value position: literals, attribute
// steps, and concat.
func (t *translator) scalar(e xquery.Expr, ctx nodeCtx) (string, error) {
	switch x := e.(type) {
	case *xquery.Literal:
		return sqlString(x.Value), nil
	case *xquery.FuncExpr:
		if x.Name != "concat" {
			return "", fmt.Errorf("xtable: function %s has no scalar form", x.Name)
		}
		parts := make([]string, 0, len(x.Args))
		for _, a := range x.Args {
			s, err := t.scalar(a, ctx)
			if err != nil {
				return "", err
			}
			parts = append(parts, s)
		}
		return "(" + strings.Join(parts, " || ") + ")", nil
	case *xquery.PathExpr:
		if x.Document != "" || len(x.Steps) != 1 || x.Steps[0].Axis != xquery.AxisAttribute {
			return "", fmt.Errorf("xtable: only @attribute paths are supported in value position")
		}
		return t.attrColumn(ctx, x.Steps[0].Name)
	}
	return "", fmt.Errorf("xtable: cannot translate %T as a value", e)
}

// attrColumn maps an attribute of the context element to its column.
func (t *translator) attrColumn(ctx nodeCtx, attr string) (string, error) {
	tab, ok := t.reg[ctx.element]
	if !ok {
		return "", fmt.Errorf("xtable: element %s has no table", ctx.element)
	}
	for _, a := range tab.Attrs() {
		if a == attr {
			return ctx.alias + "." + shred.Ident(attr), nil
		}
	}
	return "", fmt.Errorf("xtable: element %s has no attribute %q", ctx.element, attr)
}

// pathExists translates a path in boolean position into nested EXISTS.
func (t *translator) pathExists(p *xquery.PathExpr, ctx nodeCtx) (string, error) {
	if p.Document != "" {
		// The document node is the ApplicablePolicy row; its existence
		// is given by the FROM clause, so only the steps constrain.
		return t.steps(p.Steps, docCtx())
	}
	return t.steps(p.Steps, ctx)
}

// steps translates the remaining location steps relative to ctx.
func (t *translator) steps(steps []xquery.Step, ctx nodeCtx) (string, error) {
	if len(steps) == 0 {
		return "1 = 1", nil
	}
	st := steps[0]
	rest := steps[1:]
	switch st.Axis {
	case xquery.AxisAttribute:
		if len(rest) > 0 {
			return "", fmt.Errorf("xtable: attribute step must be final")
		}
		col, err := t.attrColumn(ctx, st.Name)
		if err != nil {
			return "", err
		}
		// Attribute existence: required/optional are stored explicitly,
		// so NOT NULL is the faithful test.
		return "(" + col + " IS NOT NULL)", nil

	case xquery.AxisSelf:
		if st.Name != "*" && st.Name != ctx.element {
			return "1 = 0", nil
		}
		conds := []string{}
		for _, pred := range st.Preds {
			c, err := t.boolean(pred, ctx)
			if err != nil {
				return "", err
			}
			conds = append(conds, c)
		}
		restCond, err := t.steps(rest, ctx)
		if err != nil {
			return "", err
		}
		if restCond != "1 = 1" {
			conds = append(conds, restCond)
		}
		if len(conds) == 0 {
			return "1 = 1", nil
		}
		return "(" + strings.Join(conds, " AND ") + ")", nil

	case xquery.AxisChild:
		if st.Name == "*" {
			// Wildcard: one EXISTS per possible child table, OR-ed.
			children := t.childrenOf(ctx.element)
			if len(children) == 0 {
				return "1 = 0", nil
			}
			var branches []string
			for _, child := range children {
				b, err := t.childExists(child, st.Preds, rest, ctx)
				if err != nil {
					return "", err
				}
				branches = append(branches, b)
			}
			return "(" + strings.Join(branches, " OR ") + ")", nil
		}
		tab, ok := t.reg[st.Name]
		if !ok {
			return "", fmt.Errorf("xtable: no table for element %s", st.Name)
		}
		return t.childExists(tab, st.Preds, rest, ctx)
	}
	return "", fmt.Errorf("xtable: unsupported axis")
}

// childExists emits EXISTS(SELECT * FROM childTable alias WHERE join AND
// preds AND rest-of-path).
func (t *translator) childExists(tab shred.GenericTable, preds []xquery.Expr, rest []xquery.Step, parent nodeCtx) (string, error) {
	a := t.alias()
	join, err := t.joinCond(tab, a, parent)
	if err != nil {
		return "", err
	}
	childCtx := nodeCtx{
		element: tab.Element(),
		alias:   a,
		pkCols:  append([]string{tab.IDColumn()}, tab.FKColumns()...),
	}
	conds := []string{join}
	for _, pred := range preds {
		c, err := t.boolean(pred, childCtx)
		if err != nil {
			return "", err
		}
		conds = append(conds, c)
	}
	restCond, err := t.steps(rest, childCtx)
	if err != nil {
		return "", err
	}
	if restCond != "1 = 1" {
		conds = append(conds, restCond)
	}
	return "EXISTS (SELECT * FROM " + t.fromClause(tab.TableName(), a) +
		" WHERE " + strings.Join(conds, " AND ") + ")", nil
}

func (t *translator) joinCond(tab shred.GenericTable, a string, parent nodeCtx) (string, error) {
	fks := tab.FKColumns()
	if len(fks) == 0 {
		// POLICY joins by its own id to the applicable policy.
		return a + "." + tab.IDColumn() + " = " + parent.alias + "." + parent.pkCols[0], nil
	}
	if len(fks) != len(parent.pkCols) {
		return "", fmt.Errorf("xtable: element %s cannot appear under %s", tab.Element(), parent.element)
	}
	parts := make([]string, len(fks))
	for i := range fks {
		parts[i] = a + "." + fks[i] + " = " + parent.alias + "." + parent.pkCols[i]
	}
	return strings.Join(parts, " AND "), nil
}

// childrenOf returns the tables whose immediate parent is the given
// element ("#document" parents POLICY), in deterministic order.
func (t *translator) childrenOf(element string) []shred.GenericTable {
	var names []string
	for name := range t.reg {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	var out []shred.GenericTable
	for _, name := range names {
		tab := t.reg[name]
		parents := tab.Parents()
		if element == "#document" {
			if len(parents) == 0 {
				out = append(out, tab)
			}
			continue
		}
		if len(parents) > 0 && parents[0] == element {
			out = append(out, tab)
		}
	}
	return out
}
