package xtable

import (
	"strings"
	"testing"

	"p3pdb/internal/sqlgen"
)

// translate is a convenience over the default options.
func translate(t *testing.T, src string) (sqlgen.RuleQuery, error) {
	t.Helper()
	return TranslateXQuery(src, sqlgen.FixedPolicySubquery(1), Options{})
}

func TestDirectXQueryShapes(t *testing.T) {
	// Hand-written queries beyond what xqgen emits, exercising the
	// translator's grammar corners against the live generic schema.
	db, id := genFixture(t, tinyPolicy)
	_ = id
	cases := []struct {
		src  string
		want bool
	}{
		{`if (document("applicable-policy")/POLICY/STATEMENT/PURPOSE/current) then <hit/> else ()`, true},
		{`if (document("applicable-policy")/POLICY/STATEMENT/PURPOSE/telemarketing) then <hit/> else ()`, false},
		{`if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[admin[@required != "always"]]]]]) then <hit/> else ()`, true},
		{`if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[admin[@required = "opt-in"] and current]]]]) then <hit/> else ()`, true},
		{`if (document("applicable-policy")[not(POLICY[STATEMENT[RECIPIENT[public]]])]) then <hit/> else ()`, true},
		{`if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[*[self::current]]]]]) then <hit/> else ()`, true},
		{`if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[*[self::historical]]]]]) then <hit/> else ()`, false},
		{`if (document("applicable-policy")[POLICY[STATEMENT[DATA-GROUP[DATA[starts-with(@ref, "#user.home-info.")]]]]]) then <hit/> else ()`, true},
		{`if (document("applicable-policy")["literal"]) then <hit/> else ()`, true},
		{`if (document("applicable-policy")[""]) then <hit/> else ()`, false},
		{`if (document("applicable-policy")[POLICY[STATEMENT[PURPOSE[admin/@required]]]]) then <hit/> else ()`, true},
	}
	for _, c := range cases {
		q, err := translate(t, c.src)
		if err != nil {
			t.Errorf("translate(%s): %v", c.src, err)
			continue
		}
		got, err := db.QueryExists(q.SQL)
		if err != nil {
			t.Errorf("exec(%s): %v\nSQL: %s", c.src, err, q.SQL)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v\nSQL: %s", c.src, got, c.want, q.SQL)
		}
	}
}

func TestTranslateMoreErrors(t *testing.T) {
	bad := []string{
		// else with content is unsupported in the SQL translation.
		`if (document("d")/POLICY) then <a/> else <b/>`,
		// concat as a boolean.
		`if (concat("a", "b")) then <a/> else ()`,
		// starts-with arity.
		`if (starts-with("a")) then <a/> else ()`,
		// path in value position that is not an attribute.
		`if (document("d")/POLICY[STATEMENT = "x"]) then <a/> else ()`,
		// multi-step path in value position (xqgen never emits this).
		`if (document("d")/POLICY[STATEMENT[PURPOSE[admin/@required != "always"]]]) then <a/> else ()`,
		// attribute unknown to the element.
		`if (document("d")/POLICY/STATEMENT[@bogus = "1"]) then <a/> else ()`,
		// element under the wrong parent.
		`if (document("d")/POLICY/DATA) then <a/> else ()`,
	}
	for _, src := range bad {
		if _, err := translate(t, src); err == nil {
			t.Errorf("translate(%q): expected error", src)
		}
	}
}

func TestWildcardUnderDocument(t *testing.T) {
	db, _ := genFixture(t, tinyPolicy)
	q, err := translate(t, `if (document("applicable-policy")/*[self::POLICY]) then <hit/> else ()`)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := db.QueryExists(q.SQL)
	if err != nil || !ok {
		t.Errorf("wildcard document child: %v %v\n%s", ok, err, q.SQL)
	}
	if !strings.Contains(q.SQL, "FROM (SELECT * FROM policy)") {
		t.Errorf("expected view wrapper in:\n%s", q.SQL)
	}
}
